package core

import (
	"time"

	"repro/internal/group"
	"repro/internal/types"
)

// Config parameterises one large group, following the paper's three
// quantities: size is whatever the group grows to, fanout bounds how many
// destinations any process communicates with directly, and resiliency is the
// number of members that must hold critical state / acknowledge an
// operation.
type Config struct {
	// Fanout bounds direct communication (leaf size target and branch
	// arity). Default 8.
	Fanout int
	// Resiliency is the number of replicas/acknowledgements required for an
	// operation to be considered safe. Default 3.
	Resiliency int
	// MinLeafSize is the size below which a leaf is merged into a sibling.
	// Default max(Resiliency, 2).
	MinLeafSize int
	// MaxLeafSize is the size above which a leaf is split. Default Fanout.
	MaxLeafSize int
	// LeaderSize is the target size of the resilient leader group.
	// Default Resiliency.
	LeaderSize int

	// Ordering is the delivery order used for intra-leaf multicasts issued
	// by the hierarchy (requests to cohorts, result replication, broadcast
	// delivery). Default FIFO, matching the coordinator-cohort tool.
	Ordering types.Ordering

	// RequestHandler is the service logic run by a leaf coordinator for each
	// routed request. Required on member processes of a service that accepts
	// requests; it runs on the actor goroutine and must not block.
	RequestHandler func(payload []byte) []byte

	// OnBroadcast is invoked on every member for each whole-group
	// (tree-structured) broadcast delivered to its leaf. Runs on the actor
	// goroutine.
	OnBroadcast func(payload []byte)

	// OnLeafDeliver is invoked for application-level leaf multicasts
	// (Agent.LeafCast). Runs on the actor goroutine.
	OnLeafDeliver func(from types.ProcessID, payload []byte)

	// State is the application's durable-state hook for this service member.
	// Its snapshot rides inside each leaf checkpoint next to the hierarchy's
	// own recovery state, so a member joining or relocating between leaves
	// restores application state along with the treecast watermarks. Handlers
	// that also implement group.StateApplier get write-ahead-log-recovered
	// application leaf casts through Apply (hierarchy-internal traffic is
	// never replayed to the application).
	State group.StateHandler

	// OpTimeout bounds internal blocking operations (relocations, tree
	// broadcast acknowledgement waits). Default 5s.
	OpTimeout time.Duration

	// RecoveryInterval is the period of the per-agent hierarchy recovery
	// timer driving treecast stage retries and gap NAKs. Default 25ms.
	RecoveryInterval time.Duration
	// NakTicks is how many recovery ticks a gap in the tree-broadcast
	// sequence must persist before this member NAKs for the missing records.
	// NAKs are staggered by leaf rank, so the leaf coordinator usually
	// repairs the gap for the whole leaf before anyone else asks. Default 2.
	NakTicks int
	// StageRetryTicks is how many recovery ticks pass between re-sends of an
	// unacknowledged treecast stage (each re-send rotates to the leaf's next
	// contact, which is what recovers from a black-holed representative).
	// Default 4.
	StageRetryTicks int
	// StageRetries caps how many times a forwarder re-sends one stage before
	// giving the subtree up (it still acknowledges partial coverage upward,
	// and the NAK path keeps repairing members that come back). -1 disables
	// stage retries entirely — directed tests use it to isolate the NAK
	// path. Default 3.
	StageRetries int
}

func (c Config) withDefaults() Config {
	if c.Fanout <= 1 {
		c.Fanout = 8
	}
	if c.Resiliency <= 0 {
		c.Resiliency = 3
	}
	if c.Resiliency > c.Fanout {
		c.Resiliency = c.Fanout
	}
	if c.MinLeafSize <= 0 {
		c.MinLeafSize = c.Resiliency
		if c.MinLeafSize < 2 {
			c.MinLeafSize = 2
		}
	}
	if c.MaxLeafSize <= 0 {
		c.MaxLeafSize = c.Fanout
	}
	if c.MaxLeafSize < c.MinLeafSize {
		c.MaxLeafSize = c.MinLeafSize
	}
	if c.LeaderSize <= 0 {
		c.LeaderSize = c.Resiliency
	}
	if c.Ordering == types.Unordered {
		// The zero value would deliver leaf casts in arrival order, which
		// breaks the per-sender FIFO prefix the hierarchy's consumers (and
		// the chaos checkers) rely on under reordering faults.
		c.Ordering = types.FIFO
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.RecoveryInterval <= 0 {
		c.RecoveryInterval = 25 * time.Millisecond
	}
	if c.NakTicks <= 0 {
		c.NakTicks = 2
	}
	if c.StageRetryTicks <= 0 {
		c.StageRetryTicks = 4
	}
	if c.StageRetries == 0 {
		c.StageRetries = 3
	}
	return c
}

// Validate reports configuration errors a caller should fix rather than
// have silently adjusted.
func (c Config) Validate() error {
	if c.Fanout != 0 && c.Resiliency > c.Fanout {
		return types.ErrBadConfig
	}
	if c.MinLeafSize != 0 && c.MaxLeafSize != 0 && c.MinLeafSize > c.MaxLeafSize {
		return types.ErrBadConfig
	}
	return nil
}

// --- leaf-cast envelope --------------------------------------------------------
//
// The hierarchy multiplexes several uses onto ordinary leaf-group
// multicasts. A one-byte tag plus a correlation id distinguishes them.

type leafCastTag byte

const (
	tagCCRequest    leafCastTag = 1 + iota // coordinator-cohort request replica
	tagCCResult                            // coordinator-cohort result replica
	tagBroadcast                           // whole-group tree broadcast payload
	tagAppCast                             // application-level leaf multicast
	tagLeaderUpdate                        // refreshed leader contacts relayed leaf-wide
)

func encodeLeafCast(tag leafCastTag, corr uint64, payload []byte) []byte {
	b := []byte{byte(tag)}
	b = types.EncodeUint64(b, corr)
	return append(b, payload...)
}

func decodeLeafCast(b []byte) (tag leafCastTag, corr uint64, payload []byte, ok bool) {
	if len(b) < 1 {
		return 0, 0, nil, false
	}
	tag = leafCastTag(b[0])
	corr, rest, ok := types.DecodeUint64(b[1:])
	if !ok {
		return 0, 0, nil, false
	}
	return tag, corr, rest, true
}

// --- tree broadcast record ------------------------------------------------------

// record is one whole-group broadcast as tracked by the hierarchy recovery
// layer. Origin (the initiating leader coordinator) and Seq give each
// broadcast the dense per-origin numbering the reliability tracker needs for
// duplicate filtering and gap NAKs; Floor is the origin's cumulative
// stability watermark — every current leaf has acknowledged records
// 1..Floor — which lets every member prune its retransmit buffer. The
// record rides inside stage frames, inside the tagBroadcast leaf casts, and
// verbatim in KindTreeCastRepair retransmissions, so a member can dedup and
// repair no matter which path a copy arrived by.
type record struct {
	Origin  types.ProcessID
	Seq     uint64
	Floor   uint64
	Payload []byte
}

func encodeRecord(r record) []byte {
	b := types.EncodeUint64(nil, uint64(r.Origin.Site))
	b = types.EncodeUint64(b, uint64(r.Origin.Incarnation))
	b = types.EncodeUint64(b, uint64(r.Origin.Index))
	b = types.EncodeUint64(b, r.Seq)
	b = types.EncodeUint64(b, r.Floor)
	return append(b, r.Payload...)
}

func decodeRecord(b []byte) (record, bool) {
	var r record
	site, b, ok := types.DecodeUint64(b)
	if !ok {
		return r, false
	}
	inc, b, ok := types.DecodeUint64(b)
	if !ok {
		return r, false
	}
	idx, b, ok := types.DecodeUint64(b)
	if !ok {
		return r, false
	}
	seq, b, ok := types.DecodeUint64(b)
	if !ok {
		return r, false
	}
	floor, b, ok := types.DecodeUint64(b)
	if !ok {
		return r, false
	}
	r.Origin = types.ProcessID{Site: types.SiteID(site), Incarnation: uint32(inc), Index: uint32(idx)}
	r.Seq, r.Floor, r.Payload = seq, floor, b
	return r, true
}

// --- placement reply encoding ---------------------------------------------------

// placement is the leader's answer to a join request.
type placement struct {
	Create         bool // true: found a new leaf; false: join an existing one
	Leaf           types.GroupID
	Contacts       []types.ProcessID
	AlsoLeader     bool
	LeaderGroup    types.GroupID
	LeaderContacts []types.ProcessID
}

func encodePlacement(p placement) []byte {
	b := []byte{0}
	if p.Create {
		b[0] = 1
	}
	b = encodeGroupID(b, p.Leaf)
	b = encodePIDs(b, p.Contacts)
	if p.AlsoLeader {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = encodeGroupID(b, p.LeaderGroup)
	b = encodePIDs(b, p.LeaderContacts)
	return b
}

func decodePlacement(b []byte) (placement, bool) {
	var p placement
	if len(b) < 1 {
		return p, false
	}
	p.Create = b[0] == 1
	b = b[1:]
	var ok bool
	p.Leaf, b, ok = decodeGroupID(b)
	if !ok {
		return p, false
	}
	p.Contacts, b, ok = decodePIDs(b)
	if !ok {
		return p, false
	}
	if len(b) < 1 {
		return p, false
	}
	p.AlsoLeader = b[0] == 1
	b = b[1:]
	p.LeaderGroup, b, ok = decodeGroupID(b)
	if !ok {
		return p, false
	}
	p.LeaderContacts, _, ok = decodePIDs(b)
	return p, ok
}

// --- leaf report encoding -------------------------------------------------------

// leafReport is sent by a leaf coordinator to the leader group whenever the
// leaf's view changes. Members is bounded by the leaf size, so the message
// stays small regardless of how large the whole service grows.
type leafReport struct {
	Leaf    types.GroupID
	Members []types.ProcessID
}

func encodeLeafReport(r leafReport) []byte {
	b := encodeGroupID(nil, r.Leaf)
	return encodePIDs(b, r.Members)
}

func decodeLeafReport(b []byte) (leafReport, bool) {
	var r leafReport
	var ok bool
	r.Leaf, b, ok = decodeGroupID(b)
	if !ok {
		return r, false
	}
	r.Members, _, ok = decodePIDs(b)
	return r, ok
}

// --- relocation directive -------------------------------------------------------

// directive tells one process to move to (or found) another leaf; used by
// the leader to split oversized leaves and merge undersized ones.
type directive struct {
	Create   bool
	Leaf     types.GroupID
	Contacts []types.ProcessID
}

func encodeDirective(d directive) []byte {
	b := []byte{0}
	if d.Create {
		b[0] = 1
	}
	b = encodeGroupID(b, d.Leaf)
	return encodePIDs(b, d.Contacts)
}

func decodeDirective(b []byte) (directive, bool) {
	var d directive
	if len(b) < 1 {
		return d, false
	}
	d.Create = b[0] == 1
	b = b[1:]
	var ok bool
	d.Leaf, b, ok = decodeGroupID(b)
	if !ok {
		return d, false
	}
	d.Contacts, _, ok = decodePIDs(b)
	return d, ok
}

// --- shared low-level codecs ----------------------------------------------------

func encodeGroupID(b []byte, g types.GroupID) []byte {
	b = types.EncodeString(b, g.Name)
	b = types.EncodeUint64(b, uint64(g.Kind))
	b = types.EncodeUint64(b, uint64(len(g.Path)))
	for _, p := range g.Path {
		b = types.EncodeUint64(b, uint64(p))
	}
	return b
}

func decodeGroupID(b []byte) (types.GroupID, []byte, bool) {
	name, b, ok := types.DecodeString(b)
	if !ok {
		return types.GroupID{}, b, false
	}
	kind, b, ok := types.DecodeUint64(b)
	if !ok {
		return types.GroupID{}, b, false
	}
	n, b, ok := types.DecodeUint64(b)
	if !ok {
		return types.GroupID{}, b, false
	}
	path := make([]uint32, 0, n)
	for i := uint64(0); i < n; i++ {
		var p uint64
		p, b, ok = types.DecodeUint64(b)
		if !ok {
			return types.GroupID{}, b, false
		}
		path = append(path, uint32(p))
	}
	return types.GroupID{Name: name, Kind: types.GroupKind(kind), Path: path}, b, true
}

func encodePIDs(b []byte, ps []types.ProcessID) []byte {
	b = types.EncodeUint64(b, uint64(len(ps)))
	for _, p := range ps {
		b = types.EncodeUint64(b, uint64(p.Site))
		b = types.EncodeUint64(b, uint64(p.Incarnation))
		b = types.EncodeUint64(b, uint64(p.Index))
	}
	return b
}

func decodePIDs(b []byte) ([]types.ProcessID, []byte, bool) {
	n, b, ok := types.DecodeUint64(b)
	if !ok {
		return nil, b, false
	}
	out := make([]types.ProcessID, 0, n)
	for i := uint64(0); i < n; i++ {
		var site, inc, idx uint64
		site, b, ok = types.DecodeUint64(b)
		if !ok {
			return nil, b, false
		}
		inc, b, ok = types.DecodeUint64(b)
		if !ok {
			return nil, b, false
		}
		idx, b, ok = types.DecodeUint64(b)
		if !ok {
			return nil, b, false
		}
		out = append(out, types.ProcessID{Site: types.SiteID(site), Incarnation: uint32(inc), Index: uint32(idx)})
	}
	return out, b, true
}
