package core

import (
	"sort"

	"repro/internal/reliability"
	"repro/internal/types"
)

// This file threads the flat-group reliability machinery (internal/
// reliability) through the hops of the tree-structured broadcast, closing
// the loss bug the chaos harness exposed: a KindTreeCast frame dropped
// between leaf subgroups used to be simply gone, because stability and
// NAK/retransmit stopped at the flat-group boundary.
//
// Every whole-group broadcast is a record (origin, seq, floor, payload) —
// see config.go. Each member runs one reliability.Tracker over records,
// keyed by origin, reusing the flat layer's duplicate filter, gap detection,
// retransmit buffer and NAK wire format:
//
//   - dedup: a record can reach a member along several paths (its own stage
//     frame, its leaf's internal cast, a retried stage via a different
//     representative, a repair) — Note filters every copy after the first,
//     so delivery is exactly-once per member;
//   - retransmit buffers: the tracker's per-sender buffer holds every
//     unstable record, so *any* member — not just the origin — can serve a
//     NAK, exactly as in the flat layer;
//   - cumulative stability: stage acknowledgements carry the minimum
//     contiguous receive watermark of their subtree up the aggregator path;
//     the initiator folds them into a per-leaf water table whose minimum
//     (the floor) rides down in every later record, and members prune their
//     buffers to it with SetFloor;
//   - NAKs: a member whose record sequence has a persistent gap asks a
//     rotating set of likely holders (its leaf's members, the origin, the
//     leader contacts) for the missing range; holders answer with
//     KindTreeCastRepair clones out of their buffers.
//
// The tracker is created with a nil member list and its stability is driven
// exclusively by SetFloor: the flat layer's Report/Advance path would treat
// "no members" as "everything trivially stable" and prune the buffer that
// NAK serving depends on.

// leaderRefreshTicks paces the recovery tick's leader-replenishment backstop
// (re-inviting while the leader group is short, re-pushing contacts).
const leaderRefreshTicks = 8

// moverMark pins the cumulative stability floor at a relocating member's
// last known leaf watermark while it is between leaves (its old leaf was
// merged away or split). Without the pin, removing the dissolved leaf from
// the tree lets the floor jump past records the mover has not received, and
// once every buffer prunes to the new floor no NAK or state transfer can
// repair it. The pin is dropped when the mover lands in its destination leaf
// (its leaf report names it) or after a grace period (a mover that crashed
// in flight must not wedge the floor forever).
type moverMark struct {
	water  uint64
	expire uint64 // recovery tick after which the pin lapses
}

// moverGraceTicks bounds how long a relocation pin can hold the floor: well
// past one OpTimeout's worth of join retries at the default tick interval.
const moverGraceTicks = 256

// recordKey identifies one broadcast record across arrival paths.
type recordKey struct {
	origin types.ProcessID
	seq    uint64
}

// doneStage caches the completed forwarding stages so a retried stage frame
// (a parent that never saw our ack, or a takeover after a representative
// failover) is re-acknowledged instantly instead of re-run.
type doneStage struct {
	covered  int
	water    uint64
	leafPath []uint32
}

// trkMessage wraps a record as the message shape the tracker buffers: the
// buffered form doubles as the KindTreeCastRepair wire message, so serving a
// NAK is Retrieve + Clone + Send with no re-encoding.
func (a *Agent) trkMessage(rec record) *types.Message {
	return &types.Message{
		Kind:    types.KindTreeCastRepair,
		Group:   types.BranchGroup(a.name),
		ID:      types.MsgID{Sender: rec.Origin, Seq: rec.Seq},
		Payload: encodeRecord(rec),
	}
}

// noteRecord runs every record arrival (stage frame, leaf cast, repair)
// through the tracker and delivers it to the application exactly once. It
// reports whether the record was fresh. Actor goroutine only.
func (a *Agent) noteRecord(rec record) bool {
	// A member that joined mid-stream baselines a never-seen origin at the
	// record's floor (always <= seq-1): it must not NAK for history that
	// predates it, but a floor-to-seq gap is still repairable — the origin
	// may legitimately have cast seq before seq-1 reached us.
	baseline := rec.Floor
	if rec.Seq > 0 && baseline > rec.Seq-1 {
		baseline = rec.Seq - 1
	}
	a.trk.Bootstrap(rec.Origin, baseline)
	fresh := a.trk.Note(a.trkMessage(rec))
	if rec.Floor > 0 {
		// The floor is clamped to our own contiguous watermark inside
		// SetFloor, so it can never prune records we have not yet received.
		a.trk.SetFloor(rec.Origin, rec.Floor)
	}
	if fresh {
		a.statBroadcasts++
		if a.cfg.OnBroadcast != nil {
			a.cfg.OnBroadcast(rec.Payload)
		}
	}
	return fresh
}

// currentFloor computes the initiator's cumulative stability floor: the
// minimum acknowledged watermark across every leaf currently in the tree
// (its own leaf counts at its own contiguous watermark). A leaf that has
// acknowledged nothing yet holds the floor at zero — conservative, never
// wrong. Actor goroutine only.
func (a *Agent) currentFloor() uint64 {
	if a.tree == nil || a.tree.LeafCount() == 0 {
		return 0
	}
	self := a.stackNode().PID()
	floor := ^uint64(0)
	for _, l := range a.tree.Leaves {
		w := a.leafWater[l.ID.Key()]
		if l.ID.Equal(a.leafID) {
			if own := a.trk.Ctg(self); own > w {
				w = own
			}
		}
		if w < floor {
			floor = w
		}
	}
	for _, mk := range a.moverWater {
		if mk.water < floor {
			floor = mk.water
		}
	}
	return floor
}

// pinMovers records members the leader just directed to another leaf, pinning
// the floor at their old leaf's acknowledged watermark until they land.
func (a *Agent) pinMovers(from types.GroupID, movers []types.ProcessID) {
	water := a.leafWater[from.Key()]
	for _, p := range movers {
		if p == a.stackNode().PID() {
			continue // our own tracker already holds the floor via SetFloor's clamp
		}
		a.moverWater[p] = moverMark{water: water, expire: a.recoveryTicks + moverGraceTicks}
	}
}

// raiseWater records that every member of leaf has acknowledged the
// initiator's records up to seq. Watermarks are monotone.
func (a *Agent) raiseWater(leaf types.GroupID, seq uint64) {
	if seq > a.leafWater[leaf.Key()] {
		a.leafWater[leaf.Key()] = seq
	}
}

// onRecoveryTick is the agent's periodic recovery driver: it retries
// unacknowledged stages, NAKs persistent gaps, and prunes initiator-side
// bookkeeping. Runs on the actor goroutine via node.Every.
func (a *Agent) onRecoveryTick() {
	if a.closed {
		return
	}
	a.recoveryTicks++
	a.retryPendingStages()
	a.nakGaps()

	// Leaf reports are one-shot per view change, and the one report that
	// matters most — "our leaf shrank" right after a crash — races the
	// leader group's own eviction of the same crash: it can be sent while
	// the dead coordinator is still the forwarding target and vanish, and
	// the tree then keeps planning stages through dead contacts forever.
	// Re-sending periodically makes the report path self-healing.
	if a.recoveryTicks%leaderRefreshTicks == 0 && a.leaf != nil && !a.leaf.Closed() {
		v := a.leaf.CurrentView()
		if v.Coordinator() == a.stackNode().PID() {
			a.sendLeafReport(leafReport{Leaf: a.leafID, Members: v.Members})
		}
	}

	// Initiator housekeeping: waters of leaves that left the tree must not
	// wedge the floor forever, and our own buffer prunes against the live
	// floor directly (other members learn it from the next record).
	if a.leaderCoordinator() {
		// Backstop for lost recruitment traffic: re-invite while the leader
		// group is short, and re-push the contact list (receivers drop
		// no-change pushes, so the steady state is quiet leaf-side).
		if a.recoveryTicks%leaderRefreshTicks == 0 {
			lv := a.leader.CurrentView()
			a.replenishLeaders(lv)
			a.pushLeaderContacts(lv)
			a.replicateTree()
		}
		live := make(map[string]bool, a.tree.LeafCount())
		for _, l := range a.tree.Leaves {
			live[l.ID.Key()] = true
		}
		for key := range a.leafWater {
			if !live[key] {
				delete(a.leafWater, key)
			}
		}
		for p, mk := range a.moverWater {
			if a.recoveryTicks > mk.expire {
				delete(a.moverWater, p)
			}
		}
		a.trk.SetFloor(a.stackNode().PID(), a.currentFloor())
	}
	// Completed-stage cache entries below the stability watermark can never
	// be asked about again.
	for key := range a.doneStages {
		if key.seq <= a.trk.Stable(key.origin) {
			delete(a.doneStages, key)
		}
	}
}

// retryPendingStages re-sends the outstanding children of every pending
// stage, rotating each child to its next contact — the failover that
// recovers from a representative that accepted the frame and then died (or
// was black-holed) without a synchronous send error. A leader member also
// refreshes the child's contact list from the live tree, so a plan that
// went stale mid-broadcast stops pointing at departed members.
func (a *Agent) retryPendingStages() {
	if a.cfg.StageRetries < 0 {
		return
	}
	for corr, st := range a.pendingAggs {
		st.retryTicks++
		if st.retryTicks < a.cfg.StageRetryTicks {
			continue
		}
		st.retryTicks = 0
		st.retries++
		if st.retries > a.cfg.StageRetries {
			done := st.agg.Done()
			for _, cs := range st.children {
				if st.agg.ChildOutstanding(cs.stage.Leaf) {
					st.failed = true
					done = st.agg.ChildFailed(cs.stage.Leaf)
				}
			}
			if done {
				delete(a.pendingAggs, corr)
				a.finishStage(st)
			}
			continue
		}
		for _, cs := range st.children {
			if !st.agg.ChildOutstanding(cs.stage.Leaf) {
				continue
			}
			if a.tree != nil {
				if info, ok := a.tree.Lookup(cs.stage.Leaf); ok && len(info.Contacts) > 0 {
					cs.stage.Contacts = types.CopyProcesses(info.Contacts)
				}
			}
			// The refreshed plan can name this process itself as the child's
			// representative — the tree caught up with an eviction that left
			// us the only live contact of our own leaf. sendStageTo skips
			// self, so without this the stage could never be delivered: run
			// it locally and let its ack flow back through the normal path.
			// The record was noted at initiation without a leaf cast, so
			// re-cast it here; receivers dedup via noteRecord.
			if types.ContainsProcess(cs.stage.Contacts, a.stackNode().PID()) {
				if a.leaf != nil && !a.leaf.Closed() {
					a.leaf.CastAsync(a.cfg.Ordering, encodeLeafCast(tagBroadcast, corr, encodeRecord(st.rec)))
				}
				a.handleStage(cs.stage, st.rec, corr, nil, a.stackNode().PID())
				continue
			}
			// Assume the contact the frame last went to is gone; start the
			// next attempt at the following one. A duplicate frame reaching a
			// representative that already ran the stage is re-acked from its
			// doneStages cache, so over-retrying is safe.
			cs.cursor++
			_ = a.sendStageTo(cs, corr, st.rec)
		}
	}
}

// nakGaps asks a likely holder to retransmit records this member is missing
// once a gap has persisted long enough. The threshold is staggered by leaf
// rank so the leaf coordinator usually repairs (and re-casts into the leaf)
// before the other members NAK for the same range.
func (a *Agent) nakGaps() {
	age := a.trk.GapTick()
	if age == 0 {
		return
	}
	threshold := a.cfg.NakTicks
	if a.leaf != nil && !a.leaf.Closed() {
		if rank := a.leaf.CurrentView().Rank(a.stackNode().PID()); rank > 0 {
			threshold += rank * a.cfg.NakTicks
		}
	}
	if age < threshold {
		return
	}
	byOrigin := make(map[types.ProcessID][]reliability.SeqRange)
	for _, r := range a.trk.Missing() {
		byOrigin[r.Sender] = append(byOrigin[r.Sender], r)
	}
	for origin, ranges := range byOrigin {
		target := a.nakTarget(origin)
		if target.IsNil() {
			continue
		}
		err := a.stackNode().Send(target, &types.Message{
			Kind:    types.KindTreeCastNak,
			Group:   types.BranchGroup(a.name),
			Payload: reliability.EncodeNak(ranges),
		})
		if err == nil {
			a.relStats.NaksSent += uint64(len(ranges))
		}
	}
}

// nakTarget rotates over the processes likely to hold a missing record: the
// other members of our own leaf (the representative that forwarded around us
// certainly buffered it), the origin, and the leader contacts.
func (a *Agent) nakTarget(origin types.ProcessID) types.ProcessID {
	self := a.stackNode().PID()
	var candidates []types.ProcessID
	add := func(p types.ProcessID) {
		if p.IsNil() || p == self || types.ContainsProcess(candidates, p) {
			return
		}
		candidates = append(candidates, p)
	}
	if a.leaf != nil && !a.leaf.Closed() {
		for _, p := range a.leaf.CurrentView().Members {
			add(p)
		}
	}
	add(origin)
	for _, p := range a.leaderContacts {
		add(p)
	}
	if len(candidates) == 0 {
		return types.NilProcess
	}
	pick := candidates[a.nakRR[origin]%len(candidates)]
	a.nakRR[origin]++
	return pick
}

// encodeRecoveryState snapshots the treecast tracker for a leaf-group state
// transfer: every known origin's stability floor and contiguous watermark,
// plus every buffered (unstable) record. A member that moves between leaves
// — its old leaf dissolved under a merge, say — misses the records the
// destination leaf delivered while it was in flight, and nothing replays
// them: intra-leaf casts are not re-sent across a join, and once the
// cumulative floor passes them the NAK path has no buffers left to serve
// from. Handing the joiner the provider's buffer at view-install time closes
// that window. Actor goroutine only.
func (a *Agent) encodeRecoveryState() []byte {
	cut := a.trk.CutVector()
	origins := make([]types.ProcessID, 0, len(cut))
	for p := range cut {
		origins = append(origins, p)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i].Less(origins[j]) })
	b := encodePIDs(nil, origins)
	for _, p := range origins {
		b = types.EncodeUint64(b, a.trk.Stable(p))
		b = types.EncodeUint64(b, cut[p])
	}
	buffered := a.trk.Unstable()
	b = types.EncodeUint64(b, uint64(len(buffered)))
	for _, m := range buffered {
		b = types.EncodeString(b, string(m.Payload))
	}
	return b
}

// applyRecoveryState folds a leaf-group state transfer into the local
// tracker: unknown origins are baselined at the provider's floor (history
// below it predates us and is not recoverable), buffered records are
// delivered through the normal dedup path, and the provider's contiguous
// watermarks become NAKable expectations — so a gap the transfer itself did
// not cover (the provider was lagging too) is detected instead of silently
// trailing. Actor goroutine only.
func (a *Agent) applyRecoveryState(b []byte) {
	origins, rest, ok := decodePIDs(b)
	if !ok {
		return
	}
	floors := make([]uint64, len(origins))
	ctgs := make([]uint64, len(origins))
	for i := range origins {
		if floors[i], rest, ok = types.DecodeUint64(rest); !ok {
			return
		}
		if ctgs[i], rest, ok = types.DecodeUint64(rest); !ok {
			return
		}
	}
	for i, p := range origins {
		a.trk.Bootstrap(p, floors[i])
	}
	n, rest, ok := types.DecodeUint64(rest)
	if !ok {
		return
	}
	for i := uint64(0); i < n; i++ {
		var s string
		if s, rest, ok = types.DecodeString(rest); !ok {
			return
		}
		if rec, recOK := decodeRecord([]byte(s)); recOK {
			a.noteRecord(rec)
		}
	}
	for i, p := range origins {
		a.trk.Expect(p, ctgs[i])
	}
}

// onTreeCastNak serves a retransmission request out of the local buffer.
// Any member holding the records may answer, exactly as in the flat layer.
func (a *Agent) onTreeCastNak(m *types.Message) {
	if a.closed {
		return
	}
	ranges, ok := reliability.DecodeNak(m.Payload)
	if !ok {
		return
	}
	budget := 128
	for _, r := range ranges {
		for _, held := range a.trk.Retrieve(r, budget) {
			out := held.Clone()
			out.Corr = 0
			if err := a.stackNode().Send(m.From, out); err != nil {
				return
			}
			a.relStats.NaksServed++
			budget--
		}
		if budget <= 0 {
			return
		}
	}
}

// onTreeCastRepair applies a retransmitted record: deliver it locally if
// fresh, and re-cast it into our own leaf so one repaired member (typically
// the leaf coordinator) heals the whole leaf.
func (a *Agent) onTreeCastRepair(m *types.Message) {
	if a.closed {
		return
	}
	rec, ok := decodeRecord(m.Payload)
	if !ok {
		return
	}
	if a.noteRecord(rec) && a.leaf != nil && !a.leaf.Closed() {
		a.leaf.CastAsync(a.cfg.Ordering, encodeLeafCast(tagBroadcast, 0, encodeRecord(rec)))
	}
}
