package core

import (
	"context"
	"fmt"

	"repro/internal/group"
	"repro/internal/types"
)

// Host is the per-process entry point for hierarchical groups. It owns the
// node-level handlers for the hierarchy's message kinds and dispatches them
// to the Agent of the named large group. One Host per process; any number of
// large groups per Host.
type Host struct {
	stack *group.Stack

	// agents is keyed by large-group name; only touched on the actor
	// goroutine.
	agents map[string]*Agent
}

// NewHost creates the host for a process and registers its handlers.
func NewHost(stack *group.Stack) *Host {
	h := &Host{stack: stack, agents: make(map[string]*Agent)}
	n := stack.Node()
	n.Handle(types.KindHJoinRequest, h.route((*Agent).onJoinRequest))
	n.Handle(types.KindHLeafReport, h.route((*Agent).onLeafReport))
	n.Handle(types.KindHLeafFailed, h.route((*Agent).onLeafFailed))
	n.Handle(types.KindHJoinRedirect, h.route((*Agent).onRedirect))
	n.Handle(types.KindHRoute, h.route((*Agent).onRoute))
	n.Handle(types.KindTreeCast, h.route((*Agent).onTreeCast))
	n.Handle(types.KindTreeCastAck, h.route((*Agent).onTreeCastAck))
	n.Handle(types.KindTreeCastNak, h.route((*Agent).onTreeCastNak))
	n.Handle(types.KindTreeCastRepair, h.route((*Agent).onTreeCastRepair))
	n.Handle(types.KindHLeaderInvite, h.route((*Agent).onLeaderInvite))
	n.Handle(types.KindHLeaderUpdate, h.route((*Agent).onLeaderUpdate))
	return h
}

// Stack returns the group stack this host is bound to.
func (h *Host) Stack() *group.Stack { return h.stack }

func (h *Host) route(fn func(*Agent, *types.Message)) func(*types.Message) {
	return func(m *types.Message) {
		a, ok := h.agents[m.Group.Name]
		if !ok {
			// Requests expect an answer even when misdirected.
			if m.Corr != 0 && (m.Kind == types.KindHJoinRequest || m.Kind == types.KindHRoute) {
				_ = h.stack.Node().Reply(m, nil, types.ErrNoSuchGroup.Error())
			}
			return
		}
		fn(a, m)
	}
}

// Agent returns the local agent for a large group name, or nil.
func (h *Host) Agent(name string) *Agent {
	var a *Agent
	_ = h.stack.Node().Call(func() { a = h.agents[name] })
	return a
}

// Create founds a new large group: the local process becomes the first
// member of the first leaf subgroup and the first member of the leader
// group.
func (h *Host) Create(name string, cfg Config) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("create large group %q: %w", name, err)
	}
	cfg = cfg.withDefaults()
	a := newAgent(h, name, cfg)

	var regErr error
	if err := h.stack.Node().Call(func() {
		if _, ok := h.agents[name]; ok {
			regErr = fmt.Errorf("create large group %q: %w", name, types.ErrRejected)
			return
		}
		h.agents[name] = a
	}); err != nil {
		return nil, err
	}
	if regErr != nil {
		return nil, regErr
	}
	if err := a.bootstrap(); err != nil {
		_ = h.stack.Node().Call(func() { delete(h.agents, name) })
		return nil, err
	}
	return a, nil
}

// Join adds the local process to an existing large group via any process
// already participating in it (typically resolved through the name
// service). It blocks until the process has been placed in a leaf subgroup.
func (h *Host) Join(ctx context.Context, name string, contact types.ProcessID, cfg Config) (*Agent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("join large group %q: %w", name, err)
	}
	cfg = cfg.withDefaults()
	a := newAgent(h, name, cfg)

	var regErr error
	if err := h.stack.Node().Call(func() {
		if _, ok := h.agents[name]; ok {
			regErr = fmt.Errorf("join large group %q: %w", name, types.ErrRejected)
			return
		}
		h.agents[name] = a
	}); err != nil {
		return nil, err
	}
	if regErr != nil {
		return nil, regErr
	}
	if err := a.joinVia(ctx, contact); err != nil {
		_ = h.stack.Node().Call(func() { delete(h.agents, name) })
		return nil, err
	}
	return a, nil
}

// remove unregisters an agent (after Leave). Actor goroutine only.
func (h *Host) remove(name string) { delete(h.agents, name) }
