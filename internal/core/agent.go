package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/group"
	"repro/internal/member"
	"repro/internal/node"
	"repro/internal/reliability"
	"repro/internal/treecast"
	"repro/internal/types"
)

// Agent is one process's participation in one large group. Every agent is a
// member of exactly one leaf subgroup; the first cfg.LeaderSize agents are
// additionally members of the resilient leader group that manages the
// subgroup tree.
type Agent struct {
	host *Host
	name string
	cfg  Config

	// Actor-owned state.
	leaf           *group.Group
	leafID         types.GroupID
	leader         *group.Group
	tree           *Tree
	leaderContacts []types.ProcessID
	moving         bool
	leaderJoining  bool
	closed         bool
	reqCounter     uint64
	pendingAggs    map[uint64]*aggState

	// Hierarchy recovery state (actor-owned; see recovery.go). trk tracks
	// every tree-broadcast record by origin — duplicate filter, gap NAKs,
	// retransmit buffer; it is driven by SetFloor, never Report/Advance.
	// bcastSeq numbers this process's own broadcasts; leafWater is the
	// initiator's per-leaf acknowledged watermark table; doneStages caches
	// completed forwarding stages for re-acks; stageCorr maps in-progress
	// records to their pending aggregation; nakRR rotates NAK targets.
	trk           *reliability.Tracker
	relStats      *reliability.Stats
	recoveryTicks uint64
	bcastSeq      uint64
	leafWater     map[string]uint64
	moverWater    map[types.ProcessID]moverMark
	doneStages    map[recordKey]doneStage
	stageCorr     map[recordKey]uint64
	nakRR         map[types.ProcessID]int
	recoveryStop  func()

	// Statistics (actor-owned; snapshots taken via Stats).
	statRequestsHandled uint64
	statCohortCopies    uint64
	statBroadcasts      uint64

	// Snapshot fields readable from any goroutine.
	mu       sync.Mutex
	snapLeaf *group.Group
	snapLead bool
}

// aggState tracks one tree broadcast this process is forwarding or
// initiating.
type aggState struct {
	agg    *treecast.Aggregator
	origin *types.Message // non-nil on the initiator: the request to answer
	parent types.ProcessID
	leafID types.GroupID
	rec    record // the broadcast being forwarded

	// children mirrors the aggregator's outstanding set with the plan and
	// per-child contact cursor the retry timer needs; waters collects each
	// acknowledged subtree's minimum receive watermark.
	children map[string]*childState
	waters   map[string]uint64

	retryTicks int
	retries    int
	failed     bool   // a subtree was given up: ack with a zero watermark
	cancel     func() // pending OpTimeout backstop
}

// childState is one child stage plus the rotating contact cursor its
// re-sends fail over with.
type childState struct {
	stage  *treecast.Stage
	cursor int
}

func newAgent(h *Host, name string, cfg Config) *Agent {
	a := &Agent{
		host:        h,
		name:        name,
		cfg:         cfg,
		pendingAggs: make(map[uint64]*aggState),
		relStats:    &reliability.Stats{},
		leafWater:   make(map[string]uint64),
		moverWater:  make(map[types.ProcessID]moverMark),
		doneStages:  make(map[recordKey]doneStage),
		stageCorr:   make(map[recordKey]uint64),
		nakRR:       make(map[types.ProcessID]int),
	}
	a.trk = reliability.NewTracker(h.stack.Node().PID(), nil, a.relStats)
	return a
}

// Name returns the large group's name.
func (a *Agent) Name() string { return a.name }

// Leaf returns the leaf subgroup this process currently belongs to.
func (a *Agent) Leaf() *group.Group {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.snapLeaf
}

// IsLeader reports whether this process is a member of the leader group.
func (a *Agent) IsLeader() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.snapLead
}

// LeaderContacts returns the currently known leader-group contacts.
func (a *Agent) LeaderContacts() []types.ProcessID {
	var out []types.ProcessID
	_ = a.stackNode().Call(func() { out = types.CopyProcesses(a.leaderContacts) })
	return out
}

// Tree returns a copy of the subgroup tree as this process knows it (only
// leader members hold one; others get an empty tree).
func (a *Agent) Tree() *Tree {
	var t *Tree
	_ = a.stackNode().Call(func() {
		if a.tree != nil {
			t = a.tree.Clone()
		}
	})
	if t == nil {
		t = NewTree(a.name, a.cfg.Fanout)
	}
	return t
}

// Stats is a snapshot of per-agent counters used by experiments.
type Stats struct {
	RequestsHandled uint64
	CohortCopies    uint64
	Broadcasts      uint64
}

// LeafID returns the id of the leaf subgroup this process currently belongs
// to (zero value before the agent has been placed).
func (a *Agent) LeafID() types.GroupID {
	var id types.GroupID
	_ = a.stackNode().Call(func() { id = a.leafID })
	return id
}

// RecoveryStats returns the hierarchy recovery layer's counters — the
// NAK/retransmit and pruning work done for tree broadcasts on this process.
func (a *Agent) RecoveryStats() reliability.Stats {
	var s reliability.Stats
	_ = a.stackNode().Call(func() { s = *a.relStats })
	return s
}

// Stats returns the agent's counters.
func (a *Agent) Stats() Stats {
	var s Stats
	_ = a.stackNode().Call(func() {
		s = Stats{
			RequestsHandled: a.statRequestsHandled,
			CohortCopies:    a.statCohortCopies,
			Broadcasts:      a.statBroadcasts,
		}
	})
	return s
}

// stackNode returns the node hosting this agent's process.
func (a *Agent) stackNode() *node.Node { return a.host.stack.Node() }

// --- bootstrap and join ---------------------------------------------------------

// bootstrap founds the large group: this process becomes the first leader
// member and the first (sole) member of leaf 0.
func (a *Agent) bootstrap() error {
	self := a.stackNode().PID()
	tree := NewTree(a.name, a.cfg.Fanout)
	info := tree.AddLeaf(self)

	if err := a.stackNode().Call(func() {
		a.tree = tree
		a.leaderContacts = []types.ProcessID{self}
	}); err != nil {
		return err
	}

	leader, err := a.host.stack.Create(types.LeaderGroup(a.name), a.leaderGroupConfig())
	if err != nil {
		return fmt.Errorf("large group %q: create leader group: %w", a.name, err)
	}
	leaf, err := a.host.stack.Create(info.ID, a.leafGroupConfig(info.ID))
	if err != nil {
		return fmt.Errorf("large group %q: create leaf group: %w", a.name, err)
	}
	return a.adopt(leaf, info.ID, leader)
}

// joinVia requests placement from any participant and joins the assigned
// leaf (and possibly the leader group).
func (a *Agent) joinVia(ctx context.Context, contact types.ProcessID) error {
	for {
		pl, err := a.requestPlacement(ctx, contact)
		if err != nil {
			return err
		}
		if err := a.stackNode().Call(func() {
			if len(pl.LeaderContacts) > 0 {
				a.leaderContacts = types.CopyProcesses(pl.LeaderContacts)
			} else {
				a.leaderContacts = []types.ProcessID{contact}
			}
		}); err != nil {
			return err
		}

		var leaf *group.Group
		if pl.Create {
			leaf, err = a.host.stack.Create(pl.Leaf, a.leafGroupConfig(pl.Leaf))
		} else {
			leaf, err = a.joinLeaf(ctx, pl.Leaf, pl.Contacts)
		}
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("join large group %q: %w", a.name, types.ErrTimeout)
			}
			// The assigned leaf may have dissolved in the meantime; ask for a
			// fresh placement.
			continue
		}

		var leader *group.Group
		if pl.AlsoLeader {
			lg, lerr := a.host.stack.Join(ctx, pl.LeaderGroup, pl.LeaderContacts[0], a.leaderGroupConfig())
			if lerr == nil {
				leader = lg
			}
			// Failing to join the leader group is not fatal: the process is
			// still a regular member of the service.
		}
		return a.adopt(leaf, pl.Leaf, leader)
	}
}

func (a *Agent) requestPlacement(ctx context.Context, contact types.ProcessID) (placement, error) {
	reply, err := a.stackNode().Request(ctx, contact, &types.Message{
		Kind:  types.KindHJoinRequest,
		Group: types.BranchGroup(a.name),
	})
	if err != nil {
		return placement{}, fmt.Errorf("join large group %q via %v: %w", a.name, contact, err)
	}
	pl, ok := decodePlacement(reply.Payload)
	if !ok {
		return placement{}, fmt.Errorf("join large group %q: malformed placement: %w", a.name, types.ErrRejected)
	}
	return pl, nil
}

func (a *Agent) joinLeaf(ctx context.Context, leafID types.GroupID, contacts []types.ProcessID) (*group.Group, error) {
	var lastErr error = types.ErrNoSuchGroup
	for _, c := range contacts {
		sub, cancel := context.WithTimeout(ctx, a.cfg.OpTimeout)
		g, err := a.host.stack.Join(sub, leafID, c, a.leafGroupConfig(leafID))
		cancel()
		if err == nil {
			return g, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

// adopt installs the leaf/leader group references and starts the hierarchy
// recovery timer.
func (a *Agent) adopt(leaf *group.Group, leafID types.GroupID, leader *group.Group) error {
	err := a.stackNode().Call(func() {
		a.leaf = leaf
		a.leafID = leafID
		if leader != nil {
			a.leader = leader
			if a.tree == nil {
				a.tree = NewTree(a.name, a.cfg.Fanout)
			}
		}
		if a.recoveryStop == nil {
			a.recoveryStop = a.stackNode().Every(a.cfg.RecoveryInterval, a.onRecoveryTick)
		}
	})
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.snapLeaf = leaf
	a.snapLead = leader != nil
	a.mu.Unlock()
	return nil
}

// Leave removes this process from the large group (its leaf and, if
// applicable, the leader group).
func (a *Agent) Leave(ctx context.Context) error {
	var leaf, leader *group.Group
	_ = a.stackNode().Call(func() {
		leaf, leader = a.leaf, a.leader
		a.closed = true
		if a.recoveryStop != nil {
			a.recoveryStop()
			a.recoveryStop = nil
		}
	})
	var firstErr error
	if leaf != nil && !leaf.Closed() {
		if err := leaf.Leave(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if leader != nil && !leader.Closed() {
		if err := leader.Leave(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	_ = a.stackNode().Call(func() { a.host.remove(a.name) })
	return firstErr
}

// --- group configurations -------------------------------------------------------

func (a *Agent) leafGroupConfig(leafID types.GroupID) group.Config {
	return group.Config{
		Resiliency: a.cfg.Resiliency,
		OnView: func(v member.View) {
			a.onLeafView(leafID, v)
		},
		OnDeliver: func(d group.Delivery) {
			a.onLeafDelivery(d)
		},
		// The checkpoint hands a joiner the treecast tracker's buffered
		// records and watermarks (a member relocating between leaves would
		// otherwise permanently miss every broadcast the destination leaf
		// delivered while it was in flight) plus, when the service carries
		// application state, the application's snapshot.
		State: leafState{a},
	}
}

func (a *Agent) leaderGroupConfig() group.Config {
	return group.Config{
		Resiliency: a.cfg.Resiliency,
		OnView: func(v member.View) {
			a.onLeaderView(v)
		},
		OnDeliver: func(d group.Delivery) {
			a.onLeaderDelivery(d)
		},
		State: leaderState{a},
	}
}

// leafState is a leaf group's checkpoint: the hierarchy's recovery state
// (length-prefixed) followed by the optional application snapshot. It runs on
// the actor goroutine, like every group callback.
type leafState struct{ a *Agent }

func (s leafState) Snapshot() ([]byte, error) {
	rec := s.a.encodeRecoveryState()
	b := types.EncodeUint64(nil, uint64(len(rec)))
	b = append(b, rec...)
	if s.a.cfg.State != nil {
		app, err := s.a.cfg.State.Snapshot()
		if err != nil {
			return nil, err
		}
		b = append(b, 1)
		b = append(b, app...)
		return b, nil
	}
	return append(b, 0), nil
}

func (s leafState) Restore(b []byte) error {
	n, rest, ok := types.DecodeUint64(b)
	if !ok || uint64(len(rest)) < n {
		return fmt.Errorf("core: leaf checkpoint truncated: %w", types.ErrRejected)
	}
	s.a.applyRecoveryState(rest[:n])
	rest = rest[n:]
	if len(rest) >= 1 && rest[0] == 1 && s.a.cfg.State != nil {
		return s.a.cfg.State.Restore(rest[1:])
	}
	return nil
}

// Apply replays a write-ahead-logged leaf delivery during recovery. Only
// application-level casts reach the application handler; hierarchy-internal
// traffic (requests, result replicas, leader updates) is coordination, not
// state, and its effects are re-derived live.
func (s leafState) Apply(d group.Delivery) {
	applier, ok := s.a.cfg.State.(group.StateApplier)
	if !ok {
		return
	}
	tag, _, payload, ok := decodeLeafCast(d.Payload)
	if !ok {
		return
	}
	switch tag {
	case tagAppCast:
		d.Payload = payload
		applier.Apply(d)
	case tagBroadcast:
		if r, ok := decodeRecord(payload); ok {
			d.Payload = r.Payload
			applier.Apply(d)
		}
	}
}

// leaderState is the leader group's checkpoint: the subgroup tree.
type leaderState struct{ a *Agent }

func (s leaderState) Snapshot() ([]byte, error) {
	if s.a.tree == nil {
		return NewTree(s.a.name, s.a.cfg.Fanout).Encode(), nil
	}
	return s.a.tree.Encode(), nil
}

func (s leaderState) Restore(b []byte) error {
	t, err := DecodeTree(b)
	if err != nil {
		return err
	}
	s.a.tree = t
	return nil
}

// Apply is a deliberate no-op: leader-group deliveries are placement and
// reconfiguration decisions whose outcome is already folded into the tree
// snapshot; replaying them at boot would re-issue directives.
func (s leaderState) Apply(group.Delivery) {}

// onLeafView runs on the actor goroutine whenever the leaf installs a new
// view. The leaf coordinator reports the membership to the leader group —
// this is the only membership traffic that ever leaves a leaf, and its size
// is bounded by the leaf size.
func (a *Agent) onLeafView(leafID types.GroupID, v member.View) {
	self := a.stackNode().PID()
	if v.Coordinator() != self || a.closed {
		return
	}
	report := leafReport{Leaf: leafID, Members: v.Members}
	a.sendLeafReport(report)
}

func (a *Agent) sendLeafReport(r leafReport) {
	self := a.stackNode().PID()
	msg := &types.Message{
		Kind:    types.KindHLeafReport,
		Group:   types.BranchGroup(a.name),
		Payload: encodeLeafReport(r),
	}
	for _, dest := range a.leaderContacts {
		if dest == self {
			a.onLeafReport(msg)
			return
		}
		if err := a.stackNode().Send(dest, msg.Clone()); err == nil {
			return
		}
	}
}

// onLeafDelivery demultiplexes intra-leaf multicasts.
func (a *Agent) onLeafDelivery(d group.Delivery) {
	tag, _, payload, ok := decodeLeafCast(d.Payload)
	if !ok {
		return
	}
	switch tag {
	case tagCCRequest, tagCCResult:
		// Cohort copy kept for resiliency: a cohort that takes over after a
		// coordinator failure re-executes from these.
		a.statCohortCopies++
	case tagBroadcast:
		// The payload is a broadcast record; noteRecord dedups across the
		// arrival paths (our representative delivered its copy at stage
		// time, a repair may have beaten the cast here) and delivers the
		// first copy to the application.
		if rec, ok := decodeRecord(payload); ok {
			a.noteRecord(rec)
		}
	case tagAppCast:
		if a.cfg.OnLeafDeliver != nil {
			a.cfg.OnLeafDeliver(d.From, payload)
		}
	case tagLeaderUpdate:
		if pids, _, ok := decodePIDs(payload); ok && len(pids) > 0 {
			a.leaderContacts = pids
		}
	}
}

// onLeaderDelivery applies tree replication casts within the leader group.
func (a *Agent) onLeaderDelivery(d group.Delivery) {
	if a.closed {
		return
	}
	// a.leader is still nil while a recruited member is mid-adoption
	// (joinLeaderAsync); such a member is certainly not the coordinator, and
	// dropping the replication cast here would leave it on the state-transfer
	// snapshot until the next tree change.
	if a.leader != nil && a.leader.CurrentView().Coordinator() == a.stackNode().PID() {
		return // the coordinator's copy is authoritative
	}
	if t, err := DecodeTree(d.Payload); err == nil {
		a.tree = t
	}
}

// replicateTree pushes the coordinator's tree to the other leader members.
func (a *Agent) replicateTree() {
	if a.leader == nil || a.closed || a.tree == nil {
		return
	}
	if a.leader.Size() <= 1 {
		return
	}
	a.leader.CastAsync(types.Total, a.tree.Encode())
}

// --- leader-group replenishment ---------------------------------------------------
//
// Leader-group membership originally only grew at join time, so every leader
// crash shrank the group permanently — and once the last leader died the
// whole hierarchy was headless: no tree, no placement, no broadcast
// initiation, even with most members alive. The chaos soak surfaced exactly
// that (two spaced crashes with LeaderSize 2). The coordinator now recruits
// replacements from the leaf contacts whenever the leader view falls below
// LeaderSize, and pushes the refreshed contact list down to the leaves so
// non-leader members stop forwarding to dead leaders.

// onLeaderView runs on the actor goroutine whenever the leader group
// installs a new view: every leader refreshes its contact cache, and the
// coordinator recruits replacements and republishes the contacts.
func (a *Agent) onLeaderView(v member.View) {
	if a.closed || v.Size() == 0 {
		return
	}
	a.leaderContacts = types.CopyProcesses(v.Members)
	if v.Coordinator() == a.stackNode().PID() {
		a.replenishLeaders(v)
		a.pushLeaderContacts(v)
		// Re-replicate on every membership change: a recruit's state
		// transfer may have come from a stale member, and the authoritative
		// copy otherwise only travels on the next tree mutation.
		a.replicateTree()
	}
}

// replenishLeaders invites members (picked from the tree's leaf contacts)
// into the leader group until it is back at LeaderSize. Invites are
// idempotent on the receiving side, so re-sending after a lost invite is
// safe; a synchronous send error rotates to the next candidate.
func (a *Agent) replenishLeaders(lv member.View) {
	need := a.cfg.LeaderSize - lv.Size()
	if need <= 0 || a.tree == nil {
		return
	}
	self := a.stackNode().PID()
	for _, l := range a.tree.Leaves {
		for _, p := range l.Contacts {
			if p == self || lv.Contains(p) {
				continue
			}
			err := a.stackNode().Send(p, &types.Message{
				Kind:  types.KindHLeaderInvite,
				Group: types.BranchGroup(a.name),
			})
			if err != nil {
				continue
			}
			if need--; need == 0 {
				return
			}
		}
	}
}

// pushLeaderContacts sends the current leader membership to every leaf
// contact in the tree; leaf coordinators relay it leaf-wide as an ordinary
// leaf cast, so even members the tree does not name stop pointing at dead
// leaders.
func (a *Agent) pushLeaderContacts(lv member.View) {
	if a.tree == nil {
		return
	}
	self := a.stackNode().PID()
	payload := encodePIDs(nil, lv.Members)
	for _, l := range a.tree.Leaves {
		for _, p := range l.Contacts {
			if p == self || lv.Contains(p) {
				continue
			}
			_ = a.stackNode().Send(p, &types.Message{
				Kind:    types.KindHLeaderUpdate,
				Group:   types.BranchGroup(a.name),
				Payload: payload,
			})
		}
	}
	// The coordinator's own leaf learns through its leaf cast.
	if a.leaf != nil && !a.leaf.Closed() && a.leaf.Size() > 1 {
		a.leaf.CastAsync(a.cfg.Ordering, encodeLeafCast(tagLeaderUpdate, 0, payload))
	}
}

// onLeaderInvite accepts a recruitment into the leader group. The join
// blocks, so it runs on its own goroutine; leaderJoining keeps duplicate
// invites from racing each other.
func (a *Agent) onLeaderInvite(m *types.Message) {
	if a.closed || a.leaderJoining {
		return
	}
	if a.leader != nil && !a.leader.Closed() {
		return // already a leader
	}
	a.leaderJoining = true
	contact := m.From
	go a.joinLeaderAsync(contact)
}

func (a *Agent) joinLeaderAsync(contact types.ProcessID) {
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.OpTimeout)
	defer cancel()
	lg, err := a.host.stack.Join(ctx, types.LeaderGroup(a.name), contact, a.leaderGroupConfig())
	var adopted bool
	_ = a.stackNode().Call(func() {
		a.leaderJoining = false
		if err != nil || a.closed {
			return
		}
		a.leader = lg
		if a.tree == nil {
			// The coordinator's state transfer normally arrives with the
			// install; an empty tree is a safe fallback until the next
			// replication cast.
			a.tree = NewTree(a.name, a.cfg.Fanout)
		}
		adopted = true
	})
	if err == nil && !adopted && lg != nil && !lg.Closed() {
		_ = lg.Leave(ctx) // the agent closed while we were joining
	}
	if adopted {
		a.mu.Lock()
		a.snapLead = true
		a.mu.Unlock()
	}
}

// onLeaderUpdate refreshes this member's leader contacts from the
// coordinator's push and relays the list into the local leaf if this member
// coordinates it.
func (a *Agent) onLeaderUpdate(m *types.Message) {
	if a.closed {
		return
	}
	pids, _, ok := decodePIDs(m.Payload)
	if !ok || len(pids) == 0 {
		return
	}
	if samePIDs(a.leaderContacts, pids) {
		return // periodic re-push with nothing new: don't re-relay
	}
	a.leaderContacts = pids
	if a.leaf != nil && !a.leaf.Closed() && a.leaf.Size() > 1 &&
		a.leaf.CurrentView().Coordinator() == a.stackNode().PID() {
		a.leaf.CastAsync(a.cfg.Ordering, encodeLeafCast(tagLeaderUpdate, 0, m.Payload))
	}
}

func samePIDs(a, b []types.ProcessID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- leader duties ---------------------------------------------------------------

// leaderCoordinator reports whether this process currently coordinates the
// leader group.
func (a *Agent) leaderCoordinator() bool {
	return a.leader != nil && !a.leader.Closed() &&
		a.leader.CurrentView().Coordinator() == a.stackNode().PID()
}

// forwardToLeader relays a message towards the leader coordinator: the
// leader view's coordinator first, then the remaining leader members, then
// the cached contacts — a crashed coordinator (synchronous send error) no
// longer strands traffic from non-leader members. Returns false if nothing
// accepted the message.
func (a *Agent) forwardToLeader(m *types.Message) bool {
	self := a.stackNode().PID()
	fwd := m.Clone()
	if fwd.ReplyTo.IsNil() {
		fwd.ReplyTo = m.From
	}
	var tried []types.ProcessID
	try := func(dest types.ProcessID) bool {
		if dest.IsNil() || dest == self || types.ContainsProcess(tried, dest) {
			return false
		}
		tried = append(tried, dest)
		return a.stackNode().Send(dest, fwd.Clone()) == nil
	}
	if a.leader != nil && !a.leader.Closed() {
		lv := a.leader.CurrentView()
		if try(lv.Coordinator()) {
			return true
		}
		for _, p := range lv.Members {
			if try(p) {
				return true
			}
		}
	}
	for _, dest := range a.leaderContacts {
		if try(dest) {
			return true
		}
	}
	return false
}

// onJoinRequest handles a placement request for a joining process.
func (a *Agent) onJoinRequest(m *types.Message) {
	if !a.leaderCoordinator() {
		if !a.forwardToLeader(m) {
			_ = a.stackNode().Reply(m, nil, types.ErrNoSuchGroup.Error())
		}
		return
	}
	joiner := m.ReplyTo
	if joiner.IsNil() {
		joiner = m.From
	}
	// Hand the joiner the full current leader view (answering coordinator
	// first), not just one contact: a joiner that only ever knew the
	// placement coordinator was stranded when that one process died.
	self := a.stackNode().PID()
	contacts := []types.ProcessID{self}
	if a.leader != nil && !a.leader.Closed() {
		for _, p := range a.leader.CurrentView().Members {
			if p != self {
				contacts = append(contacts, p)
			}
		}
	}
	pl := placement{LeaderGroup: types.LeaderGroup(a.name), LeaderContacts: contacts}

	target, ok := a.tree.Place()
	if !ok || target.Size >= a.cfg.MaxLeafSize {
		info := a.tree.AddLeaf(joiner)
		pl.Create = true
		pl.Leaf = info.ID
	} else {
		pl.Leaf = target.ID
		pl.Contacts = target.Contacts
		a.tree.Update(target.ID, target.Size+1, target.Contacts)
	}
	if a.leader != nil {
		lv := a.leader.CurrentView()
		if lv.Size() < a.cfg.LeaderSize && !lv.Contains(joiner) {
			pl.AlsoLeader = true
		}
	}
	_ = a.stackNode().Reply(m, encodePlacement(pl), "")
	a.replicateTree()
}

// onLeafReport handles a leaf coordinator's membership report.
func (a *Agent) onLeafReport(m *types.Message) {
	if !a.leaderCoordinator() {
		a.forwardToLeader(m)
		return
	}
	r, ok := decodeLeafReport(m.Payload)
	if !ok {
		return
	}
	size := len(r.Members)
	if size == 0 {
		a.tree.RemoveLeaf(r.Leaf)
		a.replicateTree()
		return
	}
	contacts := r.Members
	if len(contacts) > a.cfg.Resiliency {
		contacts = contacts[:a.cfg.Resiliency]
	}
	a.tree.Update(r.Leaf, size, contacts)
	// Members named by a leaf report have landed: the leaf-group state
	// transfer has handed them the buffered records, so their relocation
	// pins can stop holding the floor.
	for _, p := range r.Members {
		delete(a.moverWater, p)
	}

	switch {
	case size > a.cfg.MaxLeafSize:
		a.splitLeaf(r)
	case size < a.cfg.MinLeafSize && a.tree.LeafCount() > 1:
		a.mergeLeaf(r)
	}
	a.replicateTree()
}

// splitLeaf moves the youngest members of an oversized leaf into a freshly
// created leaf.
func (a *Agent) splitLeaf(r leafReport) {
	target := (a.cfg.MaxLeafSize + a.cfg.MinLeafSize) / 2
	if target < a.cfg.MinLeafSize {
		target = a.cfg.MinLeafSize
	}
	moverCount := len(r.Members) - target
	if moverCount <= 0 {
		return
	}
	movers := r.Members[len(r.Members)-moverCount:]
	a.pinMovers(r.Leaf, movers)
	info := a.tree.AddLeaf(movers[0])
	for i, p := range movers {
		d := directive{Leaf: info.ID}
		if i == 0 {
			d.Create = true
		} else {
			d.Contacts = []types.ProcessID{movers[0]}
		}
		a.sendDirective(p, d)
	}
	// The old leaf's recorded size shrinks accordingly; the next report will
	// confirm.
	remaining := len(r.Members) - moverCount
	contacts := r.Members[:minInt(remaining, a.cfg.Resiliency)]
	a.tree.Update(r.Leaf, remaining, contacts)
}

// mergeLeaf folds an undersized leaf into a sibling, but only when the
// combined leaf stays within the fanout bound. Without the capacity guard a
// freshly founded leaf (size 1, still filling up) would be merged straight
// back into the full leaf it was created to relieve, and the leader would
// oscillate between creating, merging and splitting the same members.
func (a *Agent) mergeLeaf(r leafReport) {
	var target LeafInfo
	found := false
	for _, sib := range a.tree.Siblings(r.Leaf) {
		if len(sib.Contacts) == 0 {
			continue
		}
		if sib.Size+len(r.Members) <= a.cfg.MaxLeafSize {
			target = sib
			found = true
			break
		}
	}
	if !found {
		return
	}
	a.pinMovers(r.Leaf, r.Members)
	for _, p := range r.Members {
		a.sendDirective(p, directive{Leaf: target.ID, Contacts: target.Contacts})
	}
	a.tree.RemoveLeaf(r.Leaf)
}

func (a *Agent) sendDirective(to types.ProcessID, d directive) {
	if to == a.stackNode().PID() {
		a.onRedirect(&types.Message{
			Kind:    types.KindHJoinRedirect,
			Group:   types.BranchGroup(a.name),
			Payload: encodeDirective(d),
		})
		return
	}
	_ = a.stackNode().Send(to, &types.Message{
		Kind:    types.KindHJoinRedirect,
		Group:   types.BranchGroup(a.name),
		Payload: encodeDirective(d),
	})
}

// onLeafFailed records the total failure of a leaf subgroup: the leader
// removes it from the tree so routing and placement stop using it.
func (a *Agent) onLeafFailed(m *types.Message) {
	if !a.leaderCoordinator() {
		a.forwardToLeader(m)
		return
	}
	id, _, ok := decodeGroupID(m.Payload)
	if !ok {
		return
	}
	a.tree.RemoveLeaf(id)
	a.replicateTree()
	if m.Corr != 0 {
		_ = a.stackNode().Reply(m, nil, "")
	}
}

// onRedirect relocates this process to another leaf, as instructed by the
// leader during a split or merge.
func (a *Agent) onRedirect(m *types.Message) {
	if a.closed || a.moving {
		return
	}
	d, ok := decodeDirective(m.Payload)
	if !ok {
		return
	}
	if d.Leaf.Equal(a.leafID) {
		return
	}
	a.moving = true
	oldLeaf := a.leaf
	go a.relocate(oldLeaf, d)
}

// relocate runs on its own goroutine: it leaves the current leaf and joins
// (or founds) the directed one, then swaps the agent's leaf reference.
func (a *Agent) relocate(oldLeaf *group.Group, d directive) {
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.OpTimeout)
	defer cancel()

	if oldLeaf != nil && !oldLeaf.Closed() {
		_ = oldLeaf.Leave(ctx)
	}
	var newLeaf *group.Group
	var err error
	if d.Create {
		newLeaf, err = a.host.stack.Create(d.Leaf, a.leafGroupConfig(d.Leaf))
	} else {
		newLeaf, err = a.joinLeaf(ctx, d.Leaf, d.Contacts)
	}
	if err != nil {
		// Fall back to asking the leader for a fresh placement so the
		// process does not end up outside every leaf.
		contacts := a.LeaderContacts()
		if len(contacts) > 0 {
			if pl, perr := a.requestPlacement(ctx, contacts[0]); perr == nil {
				if pl.Create {
					newLeaf, err = a.host.stack.Create(pl.Leaf, a.leafGroupConfig(pl.Leaf))
				} else {
					newLeaf, err = a.joinLeaf(ctx, pl.Leaf, pl.Contacts)
				}
				if err == nil {
					d.Leaf = pl.Leaf
				}
			}
		}
	}
	_ = a.stackNode().Call(func() {
		a.moving = false
		if err == nil && newLeaf != nil {
			a.leaf = newLeaf
			a.leafID = d.Leaf
		}
	})
	if err == nil && newLeaf != nil {
		a.mu.Lock()
		a.snapLeaf = newLeaf
		a.mu.Unlock()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
