package core_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/types"
)

const testTimeout = 10 * time.Second

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), testTimeout)
	t.Cleanup(cancel)
	return ctx
}

// service spins up a large group of n member processes (process 0 founds it)
// on the given cluster and returns the hosts and agents.
func buildService(t *testing.T, c *cluster.Cluster, n int, cfgFor func(i int) core.Config) ([]*core.Host, []*core.Agent) {
	t.Helper()
	hosts := make([]*core.Host, n)
	agents := make([]*core.Agent, n)
	for i := 0; i < n; i++ {
		hosts[i] = c.Proc(i).Host
	}
	var err error
	agents[0], err = hosts[0].Create("svc", cfgFor(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		agents[i], err = hosts[i].Join(ctxT(t), "svc", c.Proc(0).ID, cfgFor(i))
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	return hosts, agents
}

func echoCfg(fanout, resiliency int) core.Config {
	return core.Config{
		Fanout:     fanout,
		Resiliency: resiliency,
		RequestHandler: func(p []byte) []byte {
			return append([]byte("echo:"), p...)
		},
	}
}

func TestCreateLargeGroupFounder(t *testing.T) {
	c := cluster.MustNew(1, cluster.Options{})
	defer c.Stop()
	h := c.Proc(0).Host
	a, err := h.Create("svc", echoCfg(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsLeader() {
		t.Error("founder is not a leader member")
	}
	if a.Leaf() == nil || a.Leaf().Size() != 1 {
		t.Errorf("founder leaf = %v", a.Leaf())
	}
	tr := a.Tree()
	if tr.LeafCount() != 1 || tr.TotalMembers() != 1 {
		t.Errorf("tree = %+v", tr)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if h.Agent("svc") != a {
		t.Error("Host.Agent lookup failed")
	}
	if _, err := h.Create("svc", echoCfg(4, 2)); err == nil {
		t.Error("second Create for the same name succeeded")
	}
}

func TestJoinFillsLeavesUpToFanout(t *testing.T) {
	const n = 10
	fanout := 4
	c := cluster.MustNew(n, cluster.Options{})
	defer c.Stop()
	_, agents := buildService(t, c, n, func(int) core.Config { return echoCfg(fanout, 2) })

	// The leader's tree must account for every member, keep every leaf at or
	// below the fanout bound, and satisfy the structural invariants.
	ok := cluster.WaitFor(testTimeout, func() bool {
		return agents[0].Tree().TotalMembers() == n
	})
	tr := agents[0].Tree()
	if !ok {
		t.Fatalf("tree accounts for %d of %d members: %+v", tr.TotalMembers(), n, tr.Leaves)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, l := range tr.Leaves {
		if l.Size > fanout {
			t.Errorf("leaf %v has %d members, fanout %d", l.ID, l.Size, fanout)
		}
	}
	if tr.LeafCount() < n/fanout {
		t.Errorf("only %d leaves for %d members", tr.LeafCount(), n)
	}
	// Every member is in exactly one leaf, and no member's own view exceeds
	// the fanout bound (the storage claim).
	for i, a := range agents {
		leafView := a.Leaf().CurrentView()
		if leafView.Size() > fanout {
			t.Errorf("member %d sees a leaf of %d members", i, leafView.Size())
		}
		if !leafView.Contains(c.Proc(i).ID) {
			t.Errorf("member %d not in its own leaf view", i)
		}
	}
}

func TestMembersViewStorageBoundedWhileServiceGrows(t *testing.T) {
	const n = 24
	c := cluster.MustNew(n, cluster.Options{})
	defer c.Stop()
	_, agents := buildService(t, c, n, func(int) core.Config { return echoCfg(4, 2) })

	maxStorage := 0
	for _, a := range agents[1:] { // skip the founder (leader member)
		if a.IsLeader() {
			continue
		}
		if s := a.Leaf().CurrentView().StorageSize(); s > maxStorage {
			maxStorage = s
		}
	}
	// A flat group of 24 members would need ~24 addresses in every process;
	// hierarchical members must store only their leaf (≤ fanout entries).
	flatEquivalent := agents[0].Leaf().CurrentView().StorageSize() * n / agents[0].Leaf().Size()
	if maxStorage*3 > flatEquivalent {
		t.Errorf("member view storage %dB is not clearly below flat equivalent %dB", maxStorage, flatEquivalent)
	}
}

func TestClientRequestRoutedToSingleLeaf(t *testing.T) {
	const n = 12
	c := cluster.MustNew(n+1, cluster.Options{})
	defer c.Stop()
	_, agents := buildService(t, c, n, func(int) core.Config { return echoCfg(4, 2) })
	if !cluster.WaitFor(testTimeout, func() bool { return agents[0].Tree().TotalMembers() == n }) {
		t.Fatal("tree never converged")
	}

	clientProc := c.Proc(n)
	client := core.NewClient(clientProc.Node, "svc", c.Proc(0).ID)
	reply, err := client.Request(ctxT(t), []byte("quote IBM"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:quote IBM" {
		t.Errorf("reply = %q", reply)
	}
	if client.CachedServer().IsNil() {
		t.Error("client did not cache the serving leaf coordinator")
	}

	// Steady state: messages for one request must involve only the client
	// and one leaf subgroup, not the whole service. Let the warm request's
	// cohort replication drain first, so a loaded machine cannot leak its
	// tail into the measured window.
	time.Sleep(50 * time.Millisecond)
	c.Fabric.ResetStats()
	if _, err := client.Request(ctxT(t), []byte("quote DEC")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let cohort replication finish
	stats := c.Fabric.Stats()
	disturbed := c.Fabric.DistinctReceivers()
	maxLeaf := 0
	for _, l := range agents[0].Tree().Leaves {
		if l.Size > maxLeaf {
			maxLeaf = l.Size
		}
	}
	if disturbed > maxLeaf+2 {
		t.Errorf("request disturbed %d processes; leaf size is only %d", disturbed, maxLeaf)
	}
	// The request cost excludes the reliability layer's periodic stability
	// reports: they are amortized background traffic bounded by the timer
	// (and leaf-local, which the DistinctReceivers bound above still
	// verifies), not a per-request cost.
	perRequest := stats.MessagesSent - stats.PerKind[types.KindStability]
	if perRequest > uint64(3*maxLeaf+6) {
		t.Errorf("request cost %d messages; expected ~2*leaf (%d)", perRequest, maxLeaf)
	}
}

func TestRequestsSpreadAcrossLeaves(t *testing.T) {
	const n = 12
	c := cluster.MustNew(n+3, cluster.Options{})
	defer c.Stop()
	_, agents := buildService(t, c, n, func(int) core.Config { return echoCfg(4, 2) })
	if !cluster.WaitFor(testTimeout, func() bool { return agents[0].Tree().TotalMembers() == n }) {
		t.Fatal("tree never converged")
	}
	// Three clients, each issuing several requests; at least two distinct
	// leaf coordinators must end up serving (load spreading across leaves).
	servers := make(map[types.ProcessID]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for ci := 0; ci < 3; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			client := core.NewClient(c.Proc(n+ci).Node, "svc", c.Proc(0).ID)
			for r := 0; r < 3; r++ {
				if _, err := client.Request(ctxT(t), []byte(fmt.Sprintf("c%d-r%d", ci, r))); err != nil {
					t.Errorf("client %d request %d: %v", ci, r, err)
					return
				}
			}
			mu.Lock()
			servers[client.CachedServer()] = true
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	if len(servers) < 2 {
		t.Errorf("all clients served by the same leaf coordinator: %v", servers)
	}
}

func TestBroadcastReachesEveryMember(t *testing.T) {
	const n = 14
	c := cluster.MustNew(n, cluster.Options{})
	defer c.Stop()
	var delivered atomic.Int64
	_, agents := buildService(t, c, n, func(i int) core.Config {
		cfg := echoCfg(4, 2)
		cfg.OnBroadcast = func(p []byte) {
			if string(p) == "market-open" {
				delivered.Add(1)
			}
		}
		return cfg
	})
	if !cluster.WaitFor(testTimeout, func() bool { return agents[0].Tree().TotalMembers() == n }) {
		t.Fatalf("tree never converged: %+v", agents[0].Tree().Leaves)
	}

	covered, err := agents[0].Broadcast(ctxT(t), []byte("market-open"))
	if err != nil {
		t.Fatal(err)
	}
	if covered != n {
		t.Errorf("broadcast covered %d of %d members", covered, n)
	}
	if !cluster.WaitFor(testTimeout, func() bool { return delivered.Load() == int64(n) }) {
		t.Fatalf("broadcast delivered to %d of %d members", delivered.Load(), n)
	}
	// The whole-group broadcast must respect the fanout bound: no process
	// sends to more than ~2*fanout distinct destinations for this traffic.
	// (The founder also replicates the tree to the leader group, so allow
	// that slack.)
}

func TestBroadcastFromClient(t *testing.T) {
	const n = 9
	c := cluster.MustNew(n+1, cluster.Options{})
	defer c.Stop()
	var delivered atomic.Int64
	_, agents := buildService(t, c, n, func(int) core.Config {
		cfg := echoCfg(3, 2)
		cfg.OnBroadcast = func([]byte) { delivered.Add(1) }
		return cfg
	})
	if !cluster.WaitFor(testTimeout, func() bool { return agents[0].Tree().TotalMembers() == n }) {
		t.Fatal("tree never converged")
	}
	client := core.NewClient(c.Proc(n).Node, "svc", c.Proc(0).ID)
	covered, err := client.Broadcast(ctxT(t), []byte("halt-trading"))
	if err != nil {
		t.Fatal(err)
	}
	if covered != n {
		t.Errorf("covered = %d, want %d", covered, n)
	}
	if !cluster.WaitFor(testTimeout, func() bool { return delivered.Load() == int64(n) }) {
		t.Fatalf("delivered to %d of %d", delivered.Load(), n)
	}
}

func TestLeafCastStaysInsideLeaf(t *testing.T) {
	const n = 8
	c := cluster.MustNew(n, cluster.Options{})
	defer c.Stop()
	var mu sync.Mutex
	got := map[int]int{}
	_, agents := buildService(t, c, n, func(i int) core.Config {
		cfg := echoCfg(4, 2)
		cfg.OnLeafDeliver = func(_ types.ProcessID, p []byte) {
			mu.Lock()
			got[i]++
			mu.Unlock()
		}
		return cfg
	})
	if !cluster.WaitFor(testTimeout, func() bool { return agents[0].Tree().TotalMembers() == n }) {
		t.Fatal("tree never converged")
	}
	sender := agents[n-1]
	if err := sender.LeafCast(ctxT(t), []byte("cell-status")); err != nil {
		t.Fatal(err)
	}
	leafSize := sender.Leaf().Size()
	if !cluster.WaitFor(testTimeout, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, v := range got {
			total += v
		}
		return total >= leafSize
	}) {
		t.Fatal("leaf cast not delivered within the leaf")
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, v := range got {
		total += v
	}
	if total != leafSize {
		t.Errorf("leaf cast delivered to %d processes, leaf has %d members", total, leafSize)
	}
}

func TestSingleFailureDisturbsOnlyOneLeaf(t *testing.T) {
	const n = 16
	c := cluster.MustNew(n, cluster.Options{})
	defer c.Stop()
	_, agents := buildService(t, c, n, func(int) core.Config { return echoCfg(4, 3) })
	if !cluster.WaitFor(testTimeout, func() bool { return agents[0].Tree().TotalMembers() == n }) {
		t.Fatal("tree never converged")
	}

	// Pick a non-leader victim and find its leaf peers.
	victim := n - 1
	victimLeaf := agents[victim].Leaf().CurrentView()
	peers := victimLeaf.Size() - 1

	c.Fabric.ResetStats()
	c.Crash(victim)
	c.InjectFailure(victim)

	// The victim's leaf peers must install a shrunk view.
	ok := cluster.WaitFor(testTimeout, func() bool {
		for i := 0; i < n-1; i++ {
			if agents[i].Leaf().ID().Equal(victimLeaf.Group) && agents[i].Leaf().CurrentView().Contains(c.Proc(victim).ID) {
				return false
			}
		}
		return true
	})
	if !ok {
		t.Fatal("victim never removed from its leaf")
	}
	time.Sleep(100 * time.Millisecond)

	// Membership traffic must have reached only the victim's leaf peers plus
	// the leader group — a bounded set, not the whole service.
	disturbed := c.Fabric.DistinctReceivers()
	bound := peers + 4 /* leader members + report forwarding slack */
	if disturbed > bound {
		t.Errorf("failure disturbed %d processes, want <= %d (leaf peers %d)", disturbed, bound, peers)
	}
	// Members of other leaves must not have installed any new leaf view.
	for i := 0; i < n-1; i++ {
		if !agents[i].Leaf().ID().Equal(victimLeaf.Group) {
			if agents[i].Leaf().CurrentView().Contains(c.Proc(victim).ID) {
				t.Errorf("member %d (different leaf) somehow saw the victim", i)
			}
		}
	}
}

func TestLeaderTreeUpdatedAfterFailure(t *testing.T) {
	const n = 8
	c := cluster.MustNew(n, cluster.Options{})
	defer c.Stop()
	_, agents := buildService(t, c, n, func(int) core.Config { return echoCfg(4, 2) })
	if !cluster.WaitFor(testTimeout, func() bool { return agents[0].Tree().TotalMembers() == n }) {
		t.Fatal("tree never converged")
	}
	victim := n - 1
	c.Crash(victim)
	c.InjectFailure(victim)
	if !cluster.WaitFor(testTimeout, func() bool { return agents[0].Tree().TotalMembers() == n-1 }) {
		t.Fatalf("leader tree still counts %d members", agents[0].Tree().TotalMembers())
	}
	if err := agents[0].Tree().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAgentLeaveShrinksTree(t *testing.T) {
	const n = 6
	c := cluster.MustNew(n, cluster.Options{})
	defer c.Stop()
	_, agents := buildService(t, c, n, func(int) core.Config { return echoCfg(3, 2) })
	if !cluster.WaitFor(testTimeout, func() bool { return agents[0].Tree().TotalMembers() == n }) {
		t.Fatal("tree never converged")
	}
	if err := agents[n-1].Leave(ctxT(t)); err != nil {
		t.Fatal(err)
	}
	if !cluster.WaitFor(testTimeout, func() bool { return agents[0].Tree().TotalMembers() == n-1 }) {
		t.Fatalf("tree still counts %d members after leave", agents[0].Tree().TotalMembers())
	}
}

func TestRequestAfterLeafCoordinatorFailure(t *testing.T) {
	const n = 8
	c := cluster.MustNew(n+1, cluster.Options{})
	defer c.Stop()
	_, agents := buildService(t, c, n, func(int) core.Config { return echoCfg(4, 3) })
	if !cluster.WaitFor(testTimeout, func() bool { return agents[0].Tree().TotalMembers() == n }) {
		t.Fatal("tree never converged")
	}
	client := core.NewClient(c.Proc(n).Node, "svc", c.Proc(0).ID)
	if _, err := client.Request(ctxT(t), []byte("r1")); err != nil {
		t.Fatal(err)
	}
	served := client.CachedServer()
	// Crash the leaf coordinator that served the request (unless it is the
	// founder, which would also take the leader group's only seed away in
	// this small test).
	victim := -1
	for i := 1; i < n; i++ {
		if c.Proc(i).ID == served {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Skip("request was served by the founder; coordinator-failure path exercised elsewhere")
	}
	c.Crash(victim)
	c.InjectFailure(victim)
	// Allow the leaf to elect a new coordinator and the leader to hear the
	// report, then the client (whose cache now points at a dead process)
	// must still get an answer via its entry point.
	time.Sleep(200 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	reply, err := client.Request(ctx, []byte("r2"))
	if err != nil {
		t.Fatalf("request after coordinator failure: %v", err)
	}
	if string(reply) != "echo:r2" {
		t.Errorf("reply = %q", reply)
	}
}

func TestHostJoinUnknownServiceFails(t *testing.T) {
	c := cluster.MustNew(2, cluster.Options{})
	defer c.Stop()
	_ = c.Proc(0).Host
	h1 := c.Proc(1).Host
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := h1.Join(ctx, "ghost", c.Proc(0).ID, echoCfg(4, 2)); err == nil {
		t.Error("joining a non-existent service succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	c := cluster.MustNew(1, cluster.Options{})
	defer c.Stop()
	h := c.Proc(0).Host
	if _, err := h.Create("bad", core.Config{Fanout: 2, Resiliency: 5}); err == nil {
		t.Error("resiliency > fanout accepted")
	}
	if _, err := h.Create("bad2", core.Config{MinLeafSize: 9, MaxLeafSize: 3}); err == nil {
		t.Error("min > max leaf size accepted")
	}
}
