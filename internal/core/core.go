// Package core implements hierarchical process groups — the paper's central
// contribution for scaling ISIS beyond small groups.
//
// A large group with parameters size > fanout >= resiliency is organised as
// a tree of subgroups:
//
//   - Leaf subgroups are ordinary small virtually synchronous groups
//     (internal/group) holding between resiliency and ~fanout member
//     processes. All day-to-day traffic (requests, replies, internal
//     multicasts, membership changes caused by single-process failures)
//     stays inside one leaf.
//   - Branch subgroups list their child subgroups, never individual
//     processes, so no process ever stores the full membership of the large
//     group.
//   - A small resilient leader group manages the branch structure: it
//     places joining processes into leaves, splits leaves that have grown
//     too large, merges leaves that have shrunk too small, records total
//     leaf failures, and answers routing queries. Its replicated state is
//     the subgroup tree, not the member list.
//
// The package exposes three roles:
//
//   - Host: per-process dispatcher; create or join large groups through it.
//   - Agent: one process's membership of one large group (its leaf group
//     plus, for the first few members, the leader group).
//   - Client: a non-member process that sends requests to the service and
//     initiates whole-group broadcasts.
//
// Deviation from the paper, documented in DESIGN.md: the paper assigns one
// leader group to every branch subgroup. Here a single resilient leader
// group manages the whole branch-view tree; the tree still records a
// fanout-bounded branch structure (used for storage accounting and for the
// tree-structured broadcast), and all data-path message flows respect the
// same bounds, but branch management is centralised in one leader group
// rather than one per interior node.
package core
