package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/node"
	"repro/internal/types"
)

// Client lets a process that is not a member of a large group send requests
// to it and initiate whole-group broadcasts. This is the role the trading
// analyst workstations and factory work cells play against the services in
// the paper's motivating applications.
//
// The large group's name is used purely for addressing, as the paper
// prescribes: the client resolves the name to an entry process once (and
// caches the leaf coordinator that answers it), so the steady-state cost of
// a request involves only the client and one leaf subgroup.
type Client struct {
	node  *node.Node
	name  string
	entry types.ProcessID

	// AttemptTimeout bounds each individual routing attempt inside Request,
	// so a crashed or silently dead server fails one attempt instead of
	// consuming the caller's whole deadline; Request then invalidates the
	// cached server and re-routes. Set it before the first Request.
	// Default 2s.
	AttemptTimeout time.Duration

	mu     sync.Mutex
	cached types.ProcessID // leaf coordinator that served the last request
}

// NewClient creates a client of the named large group. entry is any process
// participating in the group (typically obtained from the name service).
func NewClient(n *node.Node, name string, entry types.ProcessID) *Client {
	return &Client{node: n, name: name, entry: entry}
}

// SetEntry changes the entry process (after a name-service refresh).
func (c *Client) SetEntry(entry types.ProcessID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entry = entry
	c.cached = types.NilProcess
}

// Request sends a request to the service and returns the reply produced by
// the leaf coordinator that handled it. Each attempt is individually
// bounded by AttemptTimeout; a failed attempt invalidates the cached leaf
// coordinator and re-routes through the entry point, which assigns a fresh
// leaf — so a crashed (or silently dead) server costs one attempt, not the
// whole call. Without a caller deadline the retries are capped rather than
// unbounded.
func (c *Client) Request(ctx context.Context, payload []byte) ([]byte, error) {
	attemptTimeout := c.AttemptTimeout
	if attemptTimeout <= 0 {
		attemptTimeout = 2 * time.Second
	}
	tryOne := func(dest types.ProcessID) ([]byte, types.ProcessID, error) {
		sub, cancel := context.WithTimeout(ctx, attemptTimeout)
		defer cancel()
		reply, err := c.node.Request(sub, dest, &types.Message{
			Kind:    types.KindHRoute,
			Group:   types.BranchGroup(c.name),
			Hop:     0,
			Payload: payload,
		})
		if err != nil {
			return nil, types.NilProcess, err
		}
		return reply.Payload, reply.From, nil
	}

	maxAttempts := 0 // unbounded while the caller's deadline is live
	if _, ok := ctx.Deadline(); !ok {
		maxAttempts = 8
	}
	var lastErr error
	for attempt := 0; maxAttempts == 0 || attempt < maxAttempts; attempt++ {
		c.mu.Lock()
		dest := c.cached
		if dest.IsNil() {
			dest = c.entry
		}
		c.mu.Unlock()

		out, from, err := tryOne(dest)
		if err == nil {
			c.remember(from)
			return out, nil
		}
		lastErr = err
		// The server is gone or no longer serving: drop it from the cache so
		// the next attempt re-routes through the entry point.
		c.mu.Lock()
		if c.cached == dest {
			c.cached = types.NilProcess
		}
		c.mu.Unlock()
		if ctx.Err() != nil {
			break
		}
		// Brief pause so a synchronously failing entry point does not spin.
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Millisecond):
		}
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("request to %q: %w", c.name, lastErr)
}

func (c *Client) remember(leafCoord types.ProcessID) {
	if leafCoord.IsNil() {
		return
	}
	c.mu.Lock()
	c.cached = leafCoord
	c.mu.Unlock()
}

// CachedServer returns the leaf coordinator the client is currently bound
// to, if any.
func (c *Client) CachedServer() types.ProcessID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cached
}

// Broadcast asks the service to deliver payload to every member via the
// tree-structured broadcast and returns the number of members covered.
func (c *Client) Broadcast(ctx context.Context, payload []byte) (int, error) {
	c.mu.Lock()
	entry := c.entry
	c.mu.Unlock()
	reply, err := c.node.Request(ctx, entry, &types.Message{
		Kind:    types.KindTreeCast,
		Group:   types.BranchGroup(c.name),
		Hop:     0,
		Payload: payload,
	})
	if err != nil {
		return 0, fmt.Errorf("broadcast to %q: %w", c.name, err)
	}
	covered, _, _ := types.DecodeUint64(reply.Payload)
	return int(covered), nil
}
