package core

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

func p(site uint32) types.ProcessID { return types.ProcessID{Site: types.SiteID(site)} }

func TestTreeAddPlaceRemove(t *testing.T) {
	tr := NewTree("svc", 4)
	if _, ok := tr.Place(); ok {
		t.Error("Place on empty tree reported a leaf")
	}
	l0 := tr.AddLeaf(p(1))
	if l0.Size != 1 || l0.Coordinator() != p(1) {
		t.Errorf("AddLeaf = %+v", l0)
	}
	l1 := tr.AddLeaf(p(2))
	if l0.ID.Equal(l1.ID) {
		t.Error("two leaves share an id")
	}
	if tr.LeafCount() != 2 || tr.TotalMembers() != 2 {
		t.Errorf("count=%d total=%d", tr.LeafCount(), tr.TotalMembers())
	}
	// Grow leaf 0; placement must now prefer leaf 1 (smaller).
	tr.Update(l0.ID, 5, []types.ProcessID{p(1), p(3)})
	placed, ok := tr.Place()
	if !ok || !placed.ID.Equal(l1.ID) {
		t.Errorf("Place = %+v, want %v", placed, l1.ID)
	}
	if !tr.RemoveLeaf(l1.ID) {
		t.Error("RemoveLeaf failed")
	}
	if tr.RemoveLeaf(l1.ID) {
		t.Error("RemoveLeaf succeeded twice")
	}
	if tr.LeafCount() != 1 {
		t.Errorf("LeafCount = %d", tr.LeafCount())
	}
	if _, ok := tr.Lookup(l1.ID); ok {
		t.Error("Lookup found a removed leaf")
	}
	if got, ok := tr.Lookup(l0.ID); !ok || got.Size != 5 {
		t.Errorf("Lookup = %+v, %v", got, ok)
	}
}

func TestTreeUpdateUnknownLeafAdds(t *testing.T) {
	tr := NewTree("svc", 4)
	id := types.LeafGroup("svc", 7)
	tr.Update(id, 3, []types.ProcessID{p(9)})
	if tr.LeafCount() != 1 || tr.TotalMembers() != 3 {
		t.Errorf("count=%d total=%d", tr.LeafCount(), tr.TotalMembers())
	}
	// The next AddLeaf must not collide with ordinal 7.
	l := tr.AddLeaf(p(1))
	if l.ID.Equal(id) {
		t.Error("AddLeaf reused an observed ordinal")
	}
}

func TestTreePickForRequestRoundRobins(t *testing.T) {
	tr := NewTree("svc", 4)
	a := tr.AddLeaf(p(1))
	b := tr.AddLeaf(p(2))
	c := tr.AddLeaf(p(3))
	seen := map[string]int{}
	for k := uint64(0); k < 9; k++ {
		l, ok := tr.PickForRequest(k)
		if !ok {
			t.Fatal("PickForRequest failed")
		}
		seen[l.ID.Key()]++
	}
	for _, id := range []types.GroupID{a.ID, b.ID, c.ID} {
		if seen[id.Key()] != 3 {
			t.Errorf("leaf %v picked %d times, want 3", id, seen[id.Key()])
		}
	}
	// Leaves without contacts must never be picked.
	tr.Update(a.ID, 2, nil)
	for k := uint64(0); k < 10; k++ {
		l, _ := tr.PickForRequest(k)
		if l.ID.Equal(a.ID) {
			t.Error("picked a leaf with no contacts")
		}
	}
}

func TestTreeSiblingsSortedBySize(t *testing.T) {
	tr := NewTree("svc", 4)
	a := tr.AddLeaf(p(1))
	b := tr.AddLeaf(p(2))
	c := tr.AddLeaf(p(3))
	tr.Update(a.ID, 9, []types.ProcessID{p(1)})
	tr.Update(b.ID, 2, []types.ProcessID{p(2)})
	tr.Update(c.ID, 5, []types.ProcessID{p(3)})
	sib := tr.Siblings(a.ID)
	if len(sib) != 2 || !sib[0].ID.Equal(b.ID) || !sib[1].ID.Equal(c.ID) {
		t.Errorf("Siblings = %+v", sib)
	}
}

func TestBranchViewsFanoutBound(t *testing.T) {
	for _, tc := range []struct {
		leaves, fanout int
		wantDepth      int
	}{
		{1, 4, 0},
		{4, 4, 0},
		{5, 4, 1},
		{16, 4, 1},
		{17, 4, 2},
		{64, 4, 2},
		{65, 4, 3},
		{100, 8, 2},
	} {
		tr := NewTree("svc", tc.fanout)
		for i := 0; i < tc.leaves; i++ {
			tr.AddLeaf(p(uint32(i + 1)))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Errorf("%d leaves fanout %d: %v", tc.leaves, tc.fanout, err)
		}
		if got := tr.Depth(); got != tc.wantDepth {
			t.Errorf("%d leaves fanout %d: Depth = %d, want %d", tc.leaves, tc.fanout, got, tc.wantDepth)
		}
		views := tr.BranchViews()
		for _, bv := range views {
			if len(bv.Children) > tc.fanout {
				t.Errorf("branch %v has %d children > fanout %d", bv.ID, len(bv.Children), tc.fanout)
			}
			if bv.StorageSize() <= 0 {
				t.Error("branch view storage size not positive")
			}
		}
	}
}

func TestBranchViewStorageBoundedWhileGroupGrows(t *testing.T) {
	// The paper's storage claim: no single stored view grows with the total
	// group size. Check that the largest branch view storage stays bounded
	// as leaves are added.
	tr := NewTree("svc", 8)
	maxAt := func() int {
		max := 0
		for _, bv := range tr.BranchViews() {
			if s := bv.StorageSize(); s > max {
				max = s
			}
		}
		return max
	}
	tr.AddLeaf(p(1))
	small := maxAt()
	for i := 2; i <= 200; i++ {
		tr.AddLeaf(p(uint32(i)))
	}
	big := maxAt()
	if big > small*12 {
		t.Errorf("largest branch view grew from %d to %d bytes for 200x more leaves", small, big)
	}
}

func TestTreeCheckInvariantsCatchesCorruption(t *testing.T) {
	tr := NewTree("svc", 4)
	l := tr.AddLeaf(p(1))
	tr.Leaves = append(tr.Leaves, LeafInfo{ID: l.ID, Size: 1})
	if err := tr.CheckInvariants(); err == nil {
		t.Error("duplicate leaf not detected")
	}
	tr2 := NewTree("svc", 4)
	lf := tr2.AddLeaf(p(1))
	tr2.Update(lf.ID, -1, nil)
	if err := tr2.CheckInvariants(); err == nil {
		t.Error("negative size not detected")
	}
}

func TestTreeCloneIndependent(t *testing.T) {
	tr := NewTree("svc", 4)
	l := tr.AddLeaf(p(1))
	c := tr.Clone()
	c.Update(l.ID, 99, []types.ProcessID{p(9)})
	if got, _ := tr.Lookup(l.ID); got.Size == 99 {
		t.Error("Clone shares leaf storage with the original")
	}
}

func TestTreeEncodeDecodeRoundTrip(t *testing.T) {
	tr := NewTree("quotes", 8)
	for i := 0; i < 10; i++ {
		l := tr.AddLeaf(p(uint32(i + 1)))
		tr.Update(l.ID, i+1, []types.ProcessID{p(uint32(i + 1)), p(uint32(100 + i))})
	}
	got, err := DecodeTree(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Fanout != tr.Fanout || got.LeafCount() != tr.LeafCount() || got.TotalMembers() != tr.TotalMembers() {
		t.Errorf("round trip mismatch: %+v vs %+v", got, tr)
	}
	for i, l := range tr.Leaves {
		g := got.Leaves[i]
		if !g.ID.Equal(l.ID) || g.Size != l.Size || len(g.Contacts) != len(l.Contacts) {
			t.Errorf("leaf %d mismatch: %+v vs %+v", i, g, l)
		}
	}
	// A new leaf added to the decoded tree must not collide with existing ids.
	nl := got.AddLeaf(p(200))
	for _, l := range got.Leaves[:got.LeafCount()-1] {
		if l.ID.Equal(nl.ID) {
			t.Error("decoded tree reused a leaf ordinal")
		}
	}
	if _, err := DecodeTree([]byte{1, 2, 3}); err == nil {
		t.Error("DecodeTree accepted garbage")
	}
}

func TestTreeRandomChurnInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		fanout := 2 + rng.Intn(7)
		tr := NewTree("svc", fanout)
		var ids []types.GroupID
		for op := 0; op < 200; op++ {
			switch {
			case len(ids) == 0 || rng.Float64() < 0.5:
				l := tr.AddLeaf(p(uint32(rng.Intn(1000))))
				ids = append(ids, l.ID)
			case rng.Float64() < 0.6:
				i := rng.Intn(len(ids))
				tr.Update(ids[i], rng.Intn(20), []types.ProcessID{p(uint32(rng.Intn(1000)))})
			default:
				i := rng.Intn(len(ids))
				tr.RemoveLeaf(ids[i])
				ids = append(ids[:i], ids[i+1:]...)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
		}
	}
}
