// Package isis is the public facade of the ISIS large-scale process-group
// reproduction (Birman & Cooper, "Supporting Large Scale Applications on
// Networks of Workstations", HotOS 1989).
//
// It exposes the toolkit-level programming model application programmers
// use:
//
//   - a Runtime is a deployment substrate — either a network of simulated
//     workstations (NewSimulated) or a real TCP deployment (NewTCP) — and is
//     the only thing that differs between the two; every API below it is
//     transport-agnostic, which is the paper's central claim;
//   - a Process is one workstation-resident process;
//   - flat Groups provide the classic small-scale ISIS abstraction —
//     virtually synchronous membership plus FBCAST/CBCAST/ABCAST multicast —
//     with Views and Deliveries event channels for blocking on membership
//     and message events;
//   - Services are the paper's contribution: hierarchical ("large") process
//     groups with bounded fanout, a resilient leader group, request routing
//     to individual leaf subgroups and tree-structured whole-group
//     broadcast;
//   - Clients address a Service purely by name and talk to a single leaf.
//
// See the examples directory for runnable programs and DESIGN.md for the
// architecture.
package isis

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/boot"
	"repro/internal/core"
	"repro/internal/fdetect"
	"repro/internal/group"
	"repro/internal/member"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/reliability"
	"repro/internal/transport"
	"repro/internal/types"
)

// Re-exported identifier and message types.
type (
	// ProcessID identifies a process (site, incarnation, index).
	ProcessID = types.ProcessID
	// GroupID identifies a flat group or a subgroup of a large group.
	GroupID = types.GroupID
	// Ordering selects the multicast delivery guarantee.
	Ordering = types.Ordering
	// View is a flat group's membership view.
	View = member.View
	// Delivery is one delivered multicast.
	Delivery = group.Delivery
	// GroupConfig configures a flat group membership.
	GroupConfig = group.Config
	// ServiceConfig configures a hierarchical (large-group) service member.
	ServiceConfig = core.Config
	// Group is a flat (small) process group membership.
	Group = group.Group
	// Service is one process's membership of a hierarchical large group.
	Service = core.Agent
	// ServiceClient is a non-member client of a hierarchical service.
	ServiceClient = core.Client
	// Tree is the leader group's subgroup tree.
	Tree = core.Tree
	// Stats are the fabric-level message counters.
	Stats = netsim.Stats
	// Directory is a name-service replica.
	Directory = naming.Directory
	// Resolver is a name-service client.
	Resolver = naming.Resolver
	// NetworkConfig configures the simulated workstation network.
	NetworkConfig = netsim.Config
	// DetectorConfig configures heartbeat-based failure detection.
	DetectorConfig = fdetect.Config
	// BatchingConfig configures the per-process outbox that coalesces
	// multicast traffic into transport batch frames.
	BatchingConfig = node.Batching
	// FaultEvent is one fault-injection action of a fault plan (crash,
	// partition, heal, loss/delay/duplication/reordering burst).
	FaultEvent = netsim.FaultEvent
	// GroupObserver taps every view install and delivery of one process
	// across all its flat groups (history recording, tracing).
	GroupObserver = group.Observer
	// ReliabilityConfig tunes the message-stability and NAK/retransmit
	// layer of every group a process joins (NAK pacing, stability-report
	// pacing, retransmission caps).
	ReliabilityConfig = reliability.Config
	// ReliabilityStats are a process's cumulative recovery counters
	// (NAKs sent/served, flush forwarding, sequencer-failover
	// re-announcements, stability pruning).
	ReliabilityStats = reliability.Stats
	// StateHandler is the application's durable-state hook: Snapshot is
	// captured view-consistently at installs and streamed (chunked,
	// NAK-recoverable) to joining members; Restore receives a checkpoint on
	// join or from the write-ahead log at create. Set it on GroupConfig.State
	// or ServiceConfig.State.
	StateHandler = group.StateHandler
	// StateApplier is the optional extension of StateHandler: handlers that
	// implement it receive write-ahead-log-recovered deliveries through
	// Apply instead of the OnDeliver callback.
	StateApplier = group.StateApplier
	// StateTransferStats count a group member's checkpoint-transfer and
	// write-ahead-log activity (offers, chunks, NAKs, restores, held
	// deliveries applied or dropped, WAL appends and compactions).
	StateTransferStats = group.StateTransferStats
	// TCPConfig tunes the hardened TCP connection management (dial/write
	// timeouts, keepalive, per-peer queue bound, reconnect backoff, the
	// consecutive-failure threshold that declares a peer down).
	TCPConfig = transport.TCPConfig
	// TCPStats are one process's cumulative TCP connection-management
	// counters (dials, reconnects, frames sent/shed/dropped, write
	// timeouts, peer-down declarations).
	TCPStats = transport.TCPStats
)

// Multicast orderings (the ISIS broadcast primitives).
const (
	Unordered = types.Unordered
	FBCAST    = types.FIFO
	CBCAST    = types.Causal
	ABCAST    = types.Total
)

// Fault kinds for WithFaultPlan events (simulated runtimes only).
const (
	FaultCrash     = netsim.FaultCrash
	FaultPartition = netsim.FaultPartition
	FaultHeal      = netsim.FaultHeal
	FaultLoss      = netsim.FaultLoss
	FaultDelay     = netsim.FaultDelay
	FaultDuplicate = netsim.FaultDuplicate
	FaultReorder   = netsim.FaultReorder
)

// DefaultDetector returns heartbeat-based failure detection suitable for
// demos and examples.
func DefaultDetector() DetectorConfig { return fdetect.DefaultConfig() }

// Site returns the ProcessID of the first-incarnation process on the given
// site. TCP deployments, whose site ids are assigned by the operator, use it
// to name contact processes.
func Site(site uint32) ProcessID {
	return ProcessID{Site: types.SiteID(site), Incarnation: 1}
}

// ErrWrongTransport is returned by Runtime methods that only apply to one
// deployment substrate (for example SpawnAt and AddPeer, which are
// TCP-only).
var ErrWrongTransport = errors.New("isis: operation not supported by this runtime's transport")

// --- options -----------------------------------------------------------------

// Option configures a Runtime.
type Option func(*options)

type options struct {
	netsim      NetworkConfig
	detector    DetectorConfig
	batching    BatchingConfig
	reliability ReliabilityConfig
	faults      []FaultEvent
	fanout      int
	resiliency  int
	walDir      string
	tcp         TCPConfig
}

// WithNetwork fully configures the simulated network fabric (latency model,
// loss, seed, queue lengths). It is ignored by TCP runtimes.
func WithNetwork(cfg NetworkConfig) Option {
	return func(o *options) { o.netsim = cfg }
}

// WithLatency sets the simulated one-way delivery latency and jitter.
func WithLatency(base, jitter time.Duration) Option {
	return func(o *options) {
		o.netsim.BaseLatency = base
		o.netsim.Jitter = jitter
	}
}

// WithLoss sets the simulated message-loss probability in [0,1).
func WithLoss(rate float64) Option {
	return func(o *options) { o.netsim.LossRate = rate }
}

// WithSeed seeds the simulated network's random source so experiments are
// reproducible.
func WithSeed(seed int64) Option {
	return func(o *options) { o.netsim.Seed = seed }
}

// WithDetector configures failure detection for every spawned process. The
// zero DetectorConfig disables heartbeats (failures must then be injected).
func WithDetector(cfg DetectorConfig) Option {
	return func(o *options) { o.detector = cfg }
}

// WithHeartbeats enables the default heartbeat-based failure detection
// (DefaultDetector). Interactive deployments — demos and real TCP nodes —
// want this; message-counting experiments do not.
func WithHeartbeats() Option {
	return func(o *options) { o.detector = fdetect.DefaultConfig() }
}

// WithBatching tunes the hot-path send coalescing of every spawned process:
// outbound multicast traffic queues per destination and is flushed as one
// transport batch frame when the process runs out of work, when a queue
// reaches maxBatch messages, or at the latest after the flush window. Both
// substrates batch — the simulated fabric delivers a frame as one queue
// operation, TCP writes it as one length-prefixed wire frame. Zero values
// select the defaults (256 messages, 2ms). Batching is on by default;
// WithBatching is only needed to tune it.
func WithBatching(maxBatch int, window time.Duration) Option {
	return func(o *options) {
		o.batching = BatchingConfig{MaxBatch: maxBatch, Window: window}
	}
}

// WithoutBatching disables send coalescing: every message is transmitted as
// its own frame, the pre-batching behaviour. The E9 experiment uses it as
// the baseline; real deployments have no reason to.
func WithoutBatching() Option {
	return func(o *options) { o.batching = BatchingConfig{Disable: true} }
}

// WithReliability tunes the message-stability and NAK/retransmit layer used
// by every group the runtime's processes join (zero fields keep the
// defaults). Recovery is on by default; WithReliability is only needed to
// tune it.
func WithReliability(cfg ReliabilityConfig) Option {
	return func(o *options) { o.reliability = cfg }
}

// WithoutRetransmit disables the NAK/retransmit machinery, flush forwarding
// and sequencer failover, restoring the pre-stability best-effort multicast.
// The E11 experiment uses it as the lossy-network baseline; real deployments
// have no reason to.
func WithoutRetransmit() Option {
	return func(o *options) { o.reliability = ReliabilityConfig{DisableRetransmit: true} }
}

// WithFaultPlan attaches a fault plan to a simulated runtime: a timeline of
// fault events, each tagged with the scenario step it belongs to. The plan
// is not executed by a clock — the owner of the timeline (a test, the chaos
// harness's scenario runner) calls Runtime.StepFaults(step) to apply the
// events of each step at its own pace, which keeps seeded scenarios
// deterministic. TCP runtimes ignore the plan: real deployments take their
// faults from the real world.
func WithFaultPlan(events ...FaultEvent) Option {
	return func(o *options) { o.faults = append(o.faults, events...) }
}

// WithFanout sets the default fanout bound used by CreateService/JoinService
// when the ServiceConfig leaves Fanout zero.
func WithFanout(n int) Option {
	return func(o *options) { o.fanout = n }
}

// WithResiliency sets the default resiliency (acknowledgements / replicas)
// used by CreateGroup/JoinGroup and CreateService/JoinService when their
// configs leave Resiliency zero.
func WithResiliency(n int) Option {
	return func(o *options) { o.resiliency = n }
}

// WithWAL gives every spawned process a write-ahead delivery log under dir
// (each process logs into <dir>/site-<n>, keyed by site id so a restarted
// site recovers its predecessor's log). Groups and services with a
// StateHandler then survive whole-cluster restarts: a founding CreateGroup on
// a site holding a log restores the last checkpoint and re-applies the
// deliveries logged after it. Processes spawned with SpawnWAL override the
// runtime-wide directory.
func WithWAL(dir string) Option {
	return func(o *options) { o.walDir = dir }
}

// WithoutWAL disables durable delivery logging (the default): group state
// lives only in memory and a full-cluster restart starts from scratch.
func WithoutWAL() Option {
	return func(o *options) { o.walDir = "" }
}

// WithTCPConfig tunes the TCP substrate's connection management — dial and
// write timeouts, keepalive period, per-peer send-queue bound, reconnect
// backoff and the failure threshold that declares a peer down. Zero fields
// keep the production defaults. Simulated runtimes ignore it.
func WithTCPConfig(cfg TCPConfig) Option {
	return func(o *options) { o.tcp = cfg }
}

// --- runtime -----------------------------------------------------------------

// Runtime is a collection of processes sharing one deployment substrate.
// The same Runtime API drives both substrates; programs written against it
// run unchanged over the in-memory simulation and over TCP.
type Runtime struct {
	opts   options
	net    transport.Network
	fabric *netsim.Fabric // simulated runtimes only
	tcp    *transport.TCP // TCP runtimes only

	mu       sync.Mutex
	procs    []*Process
	nextSite uint32
	sites    map[uint32]siteUse
}

// siteUse records how a site id came to be known to the runtime, so Spawn
// never auto-assigns a site already claimed by SpawnAt or AddPeer (which
// would hijack the peer route or duplicate a ProcessID).
type siteUse uint8

const (
	siteLocal siteUse = 1 + iota // a process spawned in this runtime
	sitePeer                     // a remote peer registered with AddPeer
)

// NewSimulated creates a runtime on a simulated in-memory network of
// workstations, the substrate used by tests, benchmarks and experiments.
func NewSimulated(opts ...Option) *Runtime {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	fabric := netsim.New(o.netsim)
	return &Runtime{opts: o, fabric: fabric, net: transport.NewMemory(fabric), sites: make(map[uint32]siteUse)}
}

// NewTCP creates a runtime whose processes communicate over real TCP
// sockets. Within one operating-system process, Spawn creates loopback
// listeners on ephemeral ports and peers discover each other automatically;
// multi-machine deployments use SpawnAt and AddPeer for explicit addressing
// (one isis-node daemon per workstation).
func NewTCP(opts ...Option) *Runtime {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return &Runtime{opts: o, tcp: transport.NewTCPWithConfig(o.tcp), sites: make(map[uint32]siteUse)}
}

// Transport names the runtime's deployment substrate: "memory" or "tcp".
func (r *Runtime) Transport() string {
	if r.tcp != nil {
		return "tcp"
	}
	return "memory"
}

// Fabric exposes the underlying simulated network (fault injection and
// message accounting). It returns nil for TCP runtimes.
func (r *Runtime) Fabric() *netsim.Fabric { return r.fabric }

// Stats returns the simulated fabric's message counters; TCP runtimes have
// no global observer and report zero counters.
func (r *Runtime) Stats() Stats {
	if r.fabric == nil {
		return Stats{}
	}
	return r.fabric.Stats()
}

// Processes returns every process spawned so far.
func (r *Runtime) Processes() []*Process {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Process(nil), r.procs...)
}

// Shutdown stops every process. Processes already stopped (for example by
// Crash) are skipped; stopping is idempotent.
func (r *Runtime) Shutdown() {
	for _, p := range r.Processes() {
		p.Stop()
	}
}

// Spawn creates a new process on the runtime's network with an
// automatically assigned site id. On TCP runtimes the process listens on an
// ephemeral loopback port and is registered with every process sharing this
// Runtime value.
func (r *Runtime) Spawn() (*Process, error) {
	r.mu.Lock()
	r.nextSite++
	for r.sites[r.nextSite] != 0 {
		r.nextSite++
	}
	r.sites[r.nextSite] = siteLocal
	pid := ProcessID{Site: types.SiteID(r.nextSite), Incarnation: 1}
	r.mu.Unlock()
	return r.spawnPID(pid, r.walDirFor(uint32(pid.Site)))
}

// SpawnWAL is Spawn with an explicit write-ahead-log directory for this one
// process, overriding (or, with "", opting out of) the runtime-wide WithWAL
// directory. Restart harnesses use it to hand a replacement process its
// predecessor's log.
func (r *Runtime) SpawnWAL(dir string) (*Process, error) {
	r.mu.Lock()
	r.nextSite++
	for r.sites[r.nextSite] != 0 {
		r.nextSite++
	}
	r.sites[r.nextSite] = siteLocal
	pid := ProcessID{Site: types.SiteID(r.nextSite), Incarnation: 1}
	r.mu.Unlock()
	return r.spawnPID(pid, dir)
}

// walDirFor maps a site id to its per-site log directory under the
// runtime-wide WithWAL root ("" when the runtime has no WAL configured).
func (r *Runtime) walDirFor(site uint32) string {
	if r.opts.walDir == "" {
		return ""
	}
	return filepath.Join(r.opts.walDir, fmt.Sprintf("site-%d", site))
}

func (r *Runtime) spawnPID(pid ProcessID, walDir string) (*Process, error) {
	network := r.net
	if r.tcp != nil {
		network = r.tcp
	}
	bp, err := boot.Spawn(pid, network, r.opts.detector, r.opts.batching, walDir)
	if err != nil {
		r.mu.Lock()
		delete(r.sites, uint32(pid.Site))
		r.mu.Unlock()
		return nil, fmt.Errorf("isis: spawn: %w", err)
	}
	return r.adopt(bp), nil
}

// MustSpawn is Spawn for examples and tests that cannot proceed on error.
func (r *Runtime) MustSpawn() *Process {
	p, err := r.Spawn()
	if err != nil {
		panic(err)
	}
	return p
}

// SpawnAt creates a process with an explicit site id listening at the given
// TCP address ("host:port"). It is how isis-node daemons — one per
// workstation — attach to a deployment. It fails with ErrWrongTransport on
// simulated runtimes.
func (r *Runtime) SpawnAt(site uint32, listen string) (*Process, error) {
	if r.tcp == nil {
		return nil, fmt.Errorf("isis: SpawnAt(%d, %q): %w", site, listen, ErrWrongTransport)
	}
	r.mu.Lock()
	if r.sites[site] != 0 {
		r.mu.Unlock()
		return nil, fmt.Errorf("isis: SpawnAt(%d, %q): site id already in use", site, listen)
	}
	r.sites[site] = siteLocal
	r.mu.Unlock()
	release := func() {
		r.mu.Lock()
		delete(r.sites, site)
		r.mu.Unlock()
	}
	pid := Site(site)
	ep, err := r.tcp.AttachAt(pid, listen)
	if err != nil {
		release()
		return nil, fmt.Errorf("isis: spawn at %s: %w", listen, err)
	}
	bp, err := boot.Spawn(pid, transport.Fixed{Endpoint: ep}, r.opts.detector, r.opts.batching, r.walDirFor(site))
	if err != nil {
		_ = ep.Close()
		release()
		return nil, fmt.Errorf("isis: spawn at %s: %w", listen, err)
	}
	return r.adopt(bp), nil
}

// SpawnIncarnation is SpawnAt with an explicit incarnation number. A
// supervised daemon restarted into the same slot comes back as the same
// site with the incarnation bumped: surviving members tell the old
// incarnation (still in their views until the failure detector finishes
// with it) apart from the replacement asking to rejoin, while routing —
// which is purely by site address — keeps working for contacts registered
// under any incarnation. The restarted process reuses its slot's WAL
// directory and listen address; only the incarnation changes.
func (r *Runtime) SpawnIncarnation(site uint32, incarnation uint32, listen string) (*Process, error) {
	if r.tcp == nil {
		return nil, fmt.Errorf("isis: SpawnIncarnation(%d, %d, %q): %w", site, incarnation, listen, ErrWrongTransport)
	}
	if incarnation == 0 {
		incarnation = 1
	}
	r.mu.Lock()
	if r.sites[site] != 0 {
		r.mu.Unlock()
		return nil, fmt.Errorf("isis: SpawnIncarnation(%d, %d, %q): site id already in use", site, incarnation, listen)
	}
	r.sites[site] = siteLocal
	r.mu.Unlock()
	release := func() {
		r.mu.Lock()
		delete(r.sites, site)
		r.mu.Unlock()
	}
	pid := ProcessID{Site: types.SiteID(site), Incarnation: incarnation}
	ep, err := r.tcp.AttachAt(pid, listen)
	if err != nil {
		release()
		return nil, fmt.Errorf("isis: spawn at %s: %w", listen, err)
	}
	bp, err := boot.Spawn(pid, transport.Fixed{Endpoint: ep}, r.opts.detector, r.opts.batching, r.walDirFor(site))
	if err != nil {
		_ = ep.Close()
		release()
		return nil, fmt.Errorf("isis: spawn at %s: %w", listen, err)
	}
	return r.adopt(bp), nil
}

// AddPeer registers the listen address of a process running elsewhere (in
// another isis-node daemon). It fails with ErrWrongTransport on simulated
// runtimes, where all processes share one fabric and need no registration.
func (r *Runtime) AddPeer(site uint32, addr string) error {
	if r.tcp == nil {
		return fmt.Errorf("isis: AddPeer(%d, %q): %w", site, addr, ErrWrongTransport)
	}
	r.mu.Lock()
	if r.sites[site] == siteLocal {
		r.mu.Unlock()
		return fmt.Errorf("isis: AddPeer(%d, %q): site id belongs to a local process", site, addr)
	}
	r.sites[site] = sitePeer
	r.mu.Unlock()
	r.tcp.AddPeer(Site(site), addr)
	return nil
}

func (r *Runtime) adopt(bp *boot.Proc) *Process {
	p := &Process{rt: r, boot: bp}
	r.mu.Lock()
	r.procs = append(r.procs, p)
	r.mu.Unlock()
	return p
}

// Crash simulates a workstation power failure for p: on the simulated
// fabric the network additionally stops delivering to it; in all cases its
// runtime halts. Stopping is idempotent, so a later Shutdown is safe.
func (r *Runtime) Crash(p *Process) {
	if r.fabric != nil {
		r.fabric.Crash(p.ID())
	}
	p.boot.Halt()
}

// FaultPlan returns the fault plan attached with WithFaultPlan (nil when
// none was given).
func (r *Runtime) FaultPlan() []FaultEvent {
	return append([]FaultEvent(nil), r.opts.faults...)
}

// StepFaults applies every fault-plan event scheduled for the given step and
// returns the events applied. Network-level events (partitions, loss, delay,
// duplication, reordering, heals) go to the simulated fabric; crash events
// additionally stop the targeted process and inform the survivors, exactly
// like Crash+InjectFailure. On TCP runtimes (no fabric to inject into) it
// applies nothing.
func (r *Runtime) StepFaults(step int) []FaultEvent {
	if r.fabric == nil {
		return nil
	}
	var applied []FaultEvent
	for _, ev := range r.opts.faults {
		if ev.Step != step {
			continue
		}
		r.fabric.Inject(ev)
		if ev.Kind == netsim.FaultCrash {
			if p := r.processByID(ev.Proc); p != nil && !p.Stopped() {
				p.boot.Halt()
				r.InjectFailure(p)
			}
		}
		applied = append(applied, ev)
	}
	return applied
}

// processByID returns the spawned process with the given id, or nil.
func (r *Runtime) processByID(pid ProcessID) *Process {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.procs {
		if p.ID() == pid {
			return p
		}
	}
	return nil
}

// InjectFailure tells every other process in this runtime that p has
// failed, without waiting for failure-detection timeouts.
func (r *Runtime) InjectFailure(p *Process) {
	failed := p.ID()
	for _, q := range r.Processes() {
		if q == p || q.boot.Stopped() {
			continue
		}
		stack := q.boot.Stack
		q.boot.Node.Do(func() { stack.ReportSuspicion(failed) })
	}
}

// --- process -----------------------------------------------------------------

// Process is one workstation-resident process.
type Process struct {
	rt   *Runtime
	boot *boot.Proc
}

// ID returns the process identifier.
func (p *Process) ID() ProcessID { return p.boot.PID() }

// Addr returns the process's TCP listen address, or "" on the simulated
// substrate.
func (p *Process) Addr() string {
	type addresser interface{ Addr() string }
	if a, ok := p.boot.Node.Endpoint().(addresser); ok {
		return a.Addr()
	}
	return ""
}

// Stop halts the process gracefully (write-ahead logs are drained to
// stable storage first). Stop is idempotent.
func (p *Process) Stop() { p.boot.Stop() }

// CutTCPConnections severs every live outbound TCP connection of this
// process, as a network cut mid-frame would, and returns how many were cut.
// The transport redials on the next send; the reliability layer repairs any
// frame lost in flight. It returns 0 on the simulated substrate.
func (p *Process) CutTCPConnections() int {
	if c, ok := p.boot.Node.Endpoint().(transport.ConnCutter); ok {
		return c.CutConnections()
	}
	return 0
}

// TransportStats returns the process's TCP connection-management counters
// (zero on the simulated substrate).
func (p *Process) TransportStats() TCPStats {
	if s, ok := p.boot.Node.Endpoint().(transport.TCPStatser); ok {
		return s.TCPStats()
	}
	return TCPStats{}
}

// Stopped reports whether the process has been stopped.
func (p *Process) Stopped() bool { return p.boot.Stopped() }

// ReliabilityStats returns the process's cumulative recovery counters,
// summed over all its flat groups: retransmissions asked for and served,
// casts forwarded during view-change flushes, ABCAST bindings re-announced
// by sequencer failover, and buffers released by stability.
func (p *Process) ReliabilityStats() ReliabilityStats {
	return p.boot.Stack.ReliabilityStats()
}

// ObserveGroups installs an observer tapping every flat-group view install
// and delivery of this process (the zero GroupObserver removes it). Install
// it before creating or joining groups whose events must not be missed. The
// callbacks run on the process's actor goroutine and must not block.
func (p *Process) ObserveGroups(o GroupObserver) {
	p.boot.Stack.SetObserver(o)
}

// CreateGroup founds a flat process group with this process as its first
// member.
func (p *Process) CreateGroup(name string, cfg GroupConfig) (*Group, error) {
	return p.boot.Stack.Create(types.FlatGroup(name), p.groupDefaults(cfg))
}

// JoinGroup joins an existing flat group via any current member.
func (p *Process) JoinGroup(ctx context.Context, name string, contact ProcessID, cfg GroupConfig) (*Group, error) {
	return p.boot.Stack.Join(ctx, types.FlatGroup(name), contact, p.groupDefaults(cfg))
}

// CreateService founds a hierarchical large-group service with this process
// as its first member (and first leader-group member).
func (p *Process) CreateService(name string, cfg ServiceConfig) (*Service, error) {
	return p.boot.Host.Create(name, p.serviceDefaults(cfg))
}

// JoinService adds this process to an existing hierarchical service via any
// process already participating in it.
func (p *Process) JoinService(ctx context.Context, name string, contact ProcessID, cfg ServiceConfig) (*Service, error) {
	return p.boot.Host.Join(ctx, name, contact, p.serviceDefaults(cfg))
}

// NewServiceClient creates a client of the named hierarchical service,
// reachable through the given entry process.
func (p *Process) NewServiceClient(name string, entry ProcessID) *ServiceClient {
	return core.NewClient(p.boot.Node, name, entry)
}

// NewDirectory makes this process a name-service replica.
func (p *Process) NewDirectory(peers []ProcessID) *Directory {
	return naming.NewDirectory(p.boot.Node, peers)
}

// NewResolver creates a name-service client bound to the given directory
// replica.
func (p *Process) NewResolver(directory ProcessID) *Resolver {
	return naming.NewResolver(p.boot.Node, directory)
}

func (p *Process) groupDefaults(cfg GroupConfig) GroupConfig {
	if cfg.Resiliency == 0 && p.rt.opts.resiliency > 0 {
		cfg.Resiliency = p.rt.opts.resiliency
	}
	if cfg.Reliability == (ReliabilityConfig{}) {
		cfg.Reliability = p.rt.opts.reliability
	}
	return cfg
}

func (p *Process) serviceDefaults(cfg ServiceConfig) ServiceConfig {
	if cfg.Fanout == 0 && p.rt.opts.fanout > 0 {
		cfg.Fanout = p.rt.opts.fanout
	}
	if cfg.Resiliency == 0 && p.rt.opts.resiliency > 0 {
		cfg.Resiliency = p.rt.opts.resiliency
	}
	return cfg
}

// --- waiting -----------------------------------------------------------------

// Await blocks until cond returns true or ctx ends, re-evaluating cond at a
// small fixed interval. It is the context-aware replacement for the old
// WaitFor(timeout, cond) polling idiom; conditions tied to group events
// should prefer blocking on the Group.Views and Group.Deliveries channels.
func Await(ctx context.Context, cond func() bool) error {
	if cond() {
		return nil
	}
	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			if cond() {
				return nil
			}
			return ctx.Err()
		case <-ticker.C:
			if cond() {
				return nil
			}
		}
	}
}
