// Package isis is the public facade of the ISIS large-scale process-group
// reproduction (Birman & Cooper, "Supporting Large Scale Applications on
// Networks of Workstations", HotOS 1989).
//
// It exposes the toolkit-level programming model application programmers
// use:
//
//   - a System is a network of simulated workstations (or a TCP deployment);
//   - a Process is one workstation-resident process;
//   - flat Groups provide the classic small-scale ISIS abstraction —
//     virtually synchronous membership plus FBCAST/CBCAST/ABCAST multicast;
//   - Services are the paper's contribution: hierarchical ("large") process
//     groups with bounded fanout, a resilient leader group, request routing
//     to individual leaf subgroups and tree-structured whole-group
//     broadcast;
//   - Clients address a Service purely by name and talk to a single leaf.
//
// See the examples directory for runnable programs and DESIGN.md for the
// architecture.
package isis

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fdetect"
	"repro/internal/group"
	"repro/internal/member"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/transport"
	"repro/internal/types"
)

// Re-exported identifier and message types.
type (
	// ProcessID identifies a process (site, incarnation, index).
	ProcessID = types.ProcessID
	// GroupID identifies a flat group or a subgroup of a large group.
	GroupID = types.GroupID
	// Ordering selects the multicast delivery guarantee.
	Ordering = types.Ordering
	// View is a flat group's membership view.
	View = member.View
	// Delivery is one delivered multicast.
	Delivery = group.Delivery
	// GroupConfig configures a flat group membership.
	GroupConfig = group.Config
	// ServiceConfig configures a hierarchical (large-group) service member.
	ServiceConfig = core.Config
	// Group is a flat (small) process group membership.
	Group = group.Group
	// Service is one process's membership of a hierarchical large group.
	Service = core.Agent
	// ServiceClient is a non-member client of a hierarchical service.
	ServiceClient = core.Client
	// Tree is the leader group's subgroup tree.
	Tree = core.Tree
	// Stats are the fabric-level message counters.
	Stats = netsim.Stats
	// Directory is a name-service replica.
	Directory = naming.Directory
	// Resolver is a name-service client.
	Resolver = naming.Resolver
)

// Multicast orderings (the ISIS broadcast primitives).
const (
	Unordered = types.Unordered
	FBCAST    = types.FIFO
	CBCAST    = types.Causal
	ABCAST    = types.Total
)

// Config configures a System.
type Config struct {
	// Network configures the simulated workstation network.
	Network netsim.Config
	// Detector configures failure detection. The zero value disables
	// heartbeats (failures must be injected); use DefaultDetector for
	// interactive use.
	Detector fdetect.Config
}

// DefaultDetector returns heartbeat-based failure detection suitable for
// demos and examples.
func DefaultDetector() fdetect.Config { return fdetect.DefaultConfig() }

// System is a collection of simulated workstation processes sharing one
// network fabric.
type System struct {
	cfg      Config
	fabric   *netsim.Fabric
	net      *transport.Memory
	procs    []*Process
	nextSite uint32
}

// NewSystem creates an empty system.
func NewSystem(cfg Config) *System {
	fabric := netsim.New(cfg.Network)
	return &System{cfg: cfg, fabric: fabric, net: transport.NewMemory(fabric)}
}

// Fabric exposes the underlying simulated network (fault injection and
// message accounting).
func (s *System) Fabric() *netsim.Fabric { return s.fabric }

// Stats returns the fabric's message counters.
func (s *System) Stats() Stats { return s.fabric.Stats() }

// Processes returns every process spawned so far.
func (s *System) Processes() []*Process { return append([]*Process(nil), s.procs...) }

// Shutdown stops every process.
func (s *System) Shutdown() {
	for _, p := range s.procs {
		p.Stop()
	}
}

// Process is one workstation-resident process.
type Process struct {
	node     *node.Node
	detector *fdetect.Detector
	stack    *group.Stack
	host     *core.Host
}

// Spawn creates a new process on the system's network.
func (s *System) Spawn() (*Process, error) {
	s.nextSite++
	pid := types.ProcessID{Site: types.SiteID(s.nextSite), Incarnation: 1}
	n, err := node.New(pid, s.net)
	if err != nil {
		return nil, fmt.Errorf("isis: spawn: %w", err)
	}
	p := &Process{node: n}
	p.detector = fdetect.New(n, s.cfg.Detector, func(suspect types.ProcessID) {
		p.stack.ReportSuspicion(suspect)
	})
	p.stack = group.NewStack(n, p.detector)
	p.host = core.NewHost(p.stack)
	n.Start()
	s.procs = append(s.procs, p)
	return p, nil
}

// MustSpawn is Spawn for examples and tests that cannot proceed on error.
func (s *System) MustSpawn() *Process {
	p, err := s.Spawn()
	if err != nil {
		panic(err)
	}
	return p
}

// Crash simulates a workstation power failure for p: the network stops
// delivering to it and its runtime halts.
func (s *System) Crash(p *Process) {
	s.fabric.Crash(p.ID())
	p.Stop()
}

// InjectFailure tells every other process that p has failed, without waiting
// for failure-detection timeouts.
func (s *System) InjectFailure(p *Process) {
	failed := p.ID()
	for _, q := range s.procs {
		if q == p || q.node.Stopped() {
			continue
		}
		stack := q.stack
		q.node.Do(func() { stack.ReportSuspicion(failed) })
	}
}

// ID returns the process identifier.
func (p *Process) ID() ProcessID { return p.node.PID() }

// Stop halts the process.
func (p *Process) Stop() {
	p.detector.Stop()
	p.node.Stop()
}

// CreateGroup founds a flat process group with this process as its first
// member.
func (p *Process) CreateGroup(name string, cfg GroupConfig) (*Group, error) {
	return p.stack.Create(types.FlatGroup(name), cfg)
}

// JoinGroup joins an existing flat group via any current member.
func (p *Process) JoinGroup(ctx context.Context, name string, contact ProcessID, cfg GroupConfig) (*Group, error) {
	return p.stack.Join(ctx, types.FlatGroup(name), contact, cfg)
}

// CreateService founds a hierarchical large-group service with this process
// as its first member (and first leader-group member).
func (p *Process) CreateService(name string, cfg ServiceConfig) (*Service, error) {
	return p.host.Create(name, cfg)
}

// JoinService adds this process to an existing hierarchical service via any
// process already participating in it.
func (p *Process) JoinService(ctx context.Context, name string, contact ProcessID, cfg ServiceConfig) (*Service, error) {
	return p.host.Join(ctx, name, contact, cfg)
}

// NewServiceClient creates a client of the named hierarchical service,
// reachable through the given entry process.
func (p *Process) NewServiceClient(name string, entry ProcessID) *ServiceClient {
	return core.NewClient(p.node, name, entry)
}

// NewDirectory makes this process a name-service replica.
func (p *Process) NewDirectory(peers []ProcessID) *Directory {
	return naming.NewDirectory(p.node, peers)
}

// NewResolver creates a name-service client bound to the given directory
// replica.
func (p *Process) NewResolver(directory ProcessID) *Resolver {
	return naming.NewResolver(p.node, directory)
}

// WaitFor polls cond until it returns true or the timeout expires; a
// convenience for examples that need to wait for views or deliveries.
func WaitFor(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}
